// Package hyfd implements the hybrid FD discovery algorithm of Papenbrock
// and Naumann (SIGMOD 2016), the strongest baseline of the paper.
//
// HyFD alternates two phases. The sampling phase compares likely-similar
// tuple pairs — sorted-neighborhood runs over the clusters of the
// single-attribute partitions, with a per-column efficiency queue that
// always grows the most productive run — and inducts the resulting non-FDs
// into an FD-tree. The validation phase checks the tree level by level
// against the data; when a level invalidates more than a configured
// fraction of its candidates, control returns to the (cheaper) sampler to
// prune deeper levels before they are reached.
//
// Following the paper (Section V-B), this implementation uses synergized
// induction on extended FD-trees, which already improves on the published
// HyFD numbers. Validation always refines the single-attribute partitions
// from scratch; reusing refinements across levels is exactly what DHyFD's
// dynamic data manager adds (package core). The validation phase runs on
// the shared engine.Pool when Config.Workers is above one.
package hyfd

import (
	"context"

	"repro/internal/bitset"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/fdtree"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/runstate"
	"repro/internal/sampling"
	"repro/internal/topk"
	"repro/internal/validate"
)

// manifestMax caps how many PLI-cache keys a checkpoint snapshot records.
const manifestMax = 64

// Config tunes the phase-switching heuristics and the validation pool.
type Config struct {
	// InvalidSwitchRatio: after a validation level, switch to sampling when
	// invalidated/validated exceeds this fraction. Default 0.01.
	InvalidSwitchRatio float64
	// SamplingEfficiency: a sampling phase keeps growing runs while the best
	// run yields at least this many new non-FDs per comparison. Default 0.01.
	SamplingEfficiency float64
	// Workers sets the engine.Pool width for the validation phase.
	// Values below 2 keep the published serial behaviour; sampling and
	// induction are sequential either way.
	Workers int
	// ShardSize is the row-block size of the sharded single-attribute
	// partition bootstrap: columns longer than one shard group and merge
	// on the worker pool instead of serially. <= 0 selects
	// partition.DefaultShardSize.
	ShardSize int
	// Budget optionally bounds partition memory. HyFD holds only the
	// single-attribute partitions, so exhaustion cannot change its
	// behaviour — the run is flagged Degraded to tell the caller the
	// budget could not be honoured. Nil means unlimited.
	Budget *partition.Budget
	// Cache optionally shares stripped partitions across runs over the
	// same relation; HyFD reads and publishes only the single-attribute
	// partitions. Nil disables caching.
	Cache *partition.Cache
	// TopK, when non-nil, fuses redundancy-ranked top-k selection into
	// the validation phase: validated FDs are offered to the collector
	// scored by ‖π_LHS‖ and candidate nodes whose best reachable score —
	// the smallest single-attribute partition size over their LHS —
	// cannot beat the admission threshold are skipped. The run returns
	// the collector's FDs in ranking order instead of the full cover.
	TopK *topk.Collector
	// MaxViolations relaxes validation to the g3-style bound: lhs → A
	// counts as valid while at most MaxViolations rows must be deleted
	// for it to hold exactly. Positive values disable sampling (exact
	// violating pairs must not refute approximately valid FDs); the
	// search tree specializes from validation outcomes instead. 0 keeps
	// exact discovery.
	MaxViolations int
	// Checkpoint, when non-nil, snapshots the FD-tree, non-FD set, level
	// cursor and per-column sampler runs at every validation-level
	// boundary so a killed run can resume. Nil disables durability.
	Checkpoint *runstate.Checkpointer
	// Resume, when non-nil, seeds the run from a snapshot's level
	// frontier: tree, non-FD set and sampler runs are restored and
	// validation restarts at the cursor. The caller has already
	// fingerprint-matched it.
	Resume *runstate.Snapshot
	// Retries bounds supervised re-runs of transiently failed pool items
	// (capped exponential backoff with full jitter). 0 disables retries.
	Retries int
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig() Config {
	return Config{InvalidSwitchRatio: 0.01, SamplingEfficiency: 0.01}
}

func (c *Config) fillDefaults() {
	if c.InvalidSwitchRatio <= 0 {
		c.InvalidSwitchRatio = 0.01
	}
	if c.SamplingEfficiency <= 0 {
		c.SamplingEfficiency = 0.01
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
}

// Stats reports what the run did; the scalability experiments chart them.
type Stats struct {
	SamplingRounds int // sorted-neighborhood runs executed
	Comparisons    int // tuple pairs compared while sampling
	NonFDs         int // distinct agree sets collected
	Validations    int // (node, RHS attr) validations
	Invalidated    int // validations that failed
	Levels         int // validation levels processed
	FDs            int // FDs in the output cover
}

// run is one sorted-neighborhood sampling run state for a column.
type run struct {
	col        int
	distance   int     // next window distance to execute
	efficiency float64 // of the last executed window
	exhausted  bool
}

type sampler struct {
	ctx  context.Context
	pool *engine.Pool
	r    *relation.Relation
	plis []*partition.Partition
	runs []run
	cfg  Config
}

func newSampler(ctx context.Context, pool *engine.Pool, r *relation.Relation, plis []*partition.Partition, cfg Config) *sampler {
	s := &sampler{ctx: ctx, pool: pool, r: r, plis: plis, cfg: cfg}
	for c := range plis {
		maxCluster := 0
		for _, cl := range plis[c].Clusters {
			if len(cl) > maxCluster {
				maxCluster = len(cl)
			}
		}
		s.runs = append(s.runs, run{
			col:        c,
			distance:   1,
			efficiency: 1, // optimistic until first measured
			exhausted:  maxCluster < 2,
		})
	}
	return s
}

// step executes the most promising run. It reports new non-FDs,
// comparisons, and whether any run was executed at all. The sampling
// pass shards across the run's pool (byte-identical merge, so the
// efficiency trajectory matches the serial pass at every shard size).
func (s *sampler) step(dst *sampling.NonFDSet) (newNonFDs, comparisons int, ran bool, err error) {
	best := -1
	for i := range s.runs {
		if s.runs[i].exhausted {
			continue
		}
		if best < 0 || s.runs[i].efficiency > s.runs[best].efficiency {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false, nil
	}
	ru := &s.runs[best]
	newN, comps, err := sampling.ClusterNeighborSampleSharded(s.ctx, s.pool, s.r, s.plis[ru.col], ru.distance, dst, s.cfg.ShardSize)
	if err != nil {
		return 0, 0, false, err
	}
	ru.distance++
	if comps == 0 {
		ru.exhausted = true
		ru.efficiency = 0
	} else {
		ru.efficiency = float64(newN) / float64(comps)
	}
	return newN, comps, true, nil
}

// phase runs sampling until the best run drops below the efficiency
// threshold (always executing at least one run).
func (s *sampler) phase(dst *sampling.NonFDSet, stats *Stats) error {
	first := true
	for {
		bestEff := 0.0
		for i := range s.runs {
			if !s.runs[i].exhausted && s.runs[i].efficiency > bestEff {
				bestEff = s.runs[i].efficiency
			}
		}
		if !first && bestEff < s.cfg.SamplingEfficiency {
			return nil
		}
		newN, comps, ran, err := s.step(dst)
		if err != nil {
			return err
		}
		if !ran {
			return nil
		}
		_ = newN
		stats.SamplingRounds++
		stats.Comparisons += comps
		first = false
	}
}

func (s *sampler) alive() bool {
	for i := range s.runs {
		if !s.runs[i].exhausted {
			return true
		}
	}
	return false
}

// Discover returns the left-reduced cover of the FDs holding on r.
func Discover(r *relation.Relation) []dep.FD {
	fds, _ := DiscoverWithConfig(r, DefaultConfig())
	return fds
}

// DiscoverWithConfig runs HyFD with explicit tuning and returns run
// statistics alongside the cover.
func DiscoverWithConfig(r *relation.Relation, cfg Config) ([]dep.FD, Stats) {
	//fdvet:ignore ctxflow ctx-less convenience wrapper; DiscoverCtx is the primary API until=PR20
	fds, stats, _ := DiscoverCtx(context.Background(), r, cfg)
	return fds, stats
}

// DiscoverCtx is DiscoverWithConfig with cooperative cancellation, checked
// between validation batches and sampling runs.
func DiscoverCtx(ctx context.Context, r *relation.Relation, cfg Config) ([]dep.FD, Stats, error) {
	fds, stats, _, err := discover(ctx, r, cfg)
	return fds, stats, err
}

// DiscoverRun runs HyFD and emits the algorithm-agnostic run report. On
// cancellation the partial report (with Cancelled set) is returned
// alongside ctx's error.
func DiscoverRun(ctx context.Context, r *relation.Relation, cfg Config) ([]dep.FD, *engine.RunStats, error) {
	fds, _, rs, err := discover(ctx, r, cfg)
	return fds, rs, err
}

func discover(ctx context.Context, r *relation.Relation, cfg Config) (retFDs []dep.FD, retStats Stats, retRS *engine.RunStats, retErr error) {
	cfg.fillDefaults()
	var stats Stats
	rs := engine.NewRunStats("hyfd", cfg.Workers)
	topkFlushed := false
	flushTopK := func() {
		if cfg.TopK == nil || topkFlushed {
			return
		}
		topkFlushed = true
		admitted, rejected, pruned := cfg.TopK.Counters()
		rs.Count("topk_admitted", admitted)
		rs.Count("topk_rejected", rejected)
		rs.Count("topk_pruned_branches", pruned)
	}
	defer func() {
		if rec := recover(); rec != nil {
			perr := engine.NewPanicError("hyfd", rec)
			flushTopK()
			rs.Finish(perr)
			var partial []dep.FD
			if cfg.TopK != nil {
				// Heap entries were each individually validated: a sound
				// partial top-k even after a panic.
				partial = cfg.TopK.FDs()
				rs.FDs = int64(len(partial))
			}
			retFDs, retStats, retRS, retErr = partial, stats, rs, perr
		}
	}()
	n := r.NumCols()
	if n == 0 {
		rs.Finish(nil)
		return nil, stats, rs, nil
	}
	pool := engine.NewPoolRetry(cfg.Workers, engine.RetryPolicy{Max: cfg.Retries})

	if err := ctx.Err(); err != nil {
		rs.Finish(err)
		return nil, stats, rs, err
	}
	cache0 := cfg.Cache.Stats()
	defer func() {
		delta := cfg.Cache.Stats().Delta(cache0)
		rs.CacheHits += delta.Hits
		rs.CacheMisses += delta.Misses
		rs.CacheEvictions += delta.Evictions
	}()
	stop := rs.Phase("sample")
	plis, built, err := partition.Singles(ctx, pool, r.Cols, r.Cards, cfg.ShardSize, cfg.Cache, cfg.Budget)
	rs.PartitionsBuilt += int64(built)
	if err != nil {
		stop()
		pool.FoldRetryStats(rs)
		pool.FoldShardStats(rs)
		rs.Finish(err)
		return nil, stats, rs, err
	}
	if cfg.Budget.Exhausted() {
		rs.Degrade(cfg.Budget.Reason())
	}
	v := validate.New(r)
	v.MaxViolations = cfg.MaxViolations
	approx := cfg.MaxViolations > 0
	full := bitset.Full(n)
	smp := newSampler(ctx, pool, r, plis, cfg)

	var tree *fdtree.Tree
	var nonFDs *sampling.NonFDSet
	startLevel := 1
	if lf := resumeLevel(cfg.Resume); lf != nil {
		// Continue a checkpointed run: the restored tree, non-FD set and
		// sampler runs are the search state; root validation and the
		// initial sampling already happened, so the run re-enters the level
		// loop at the cursor with cumulative counters.
		tree = cfg.Resume.Tree.Restore()
		nonFDs = cfg.Resume.NonFDs.Restore()
		if nonFDs == nil {
			nonFDs = sampling.NewNonFDSet(n)
		}
		cfg.Resume.Stats.Apply(rs)
		v.Validations = int(lf.Validations)
		v.Invalidated = int(lf.Invalidated)
		v.RowsScanned = int(lf.RowsScannedV)
		v.ClustersRefined = int(lf.ClustersRefined)
		stats.SamplingRounds = int(lf.SamplingRounds)
		stats.Comparisons = int(lf.Comparisons)
		stats.Levels = int(lf.Level) - 1
		rs.RowsScanned = lf.RowsScanned
		rs.PartitionsBuilt = lf.PartitionsBuilt
		startLevel = int(lf.Level)
		for i := range smp.runs {
			if i < len(lf.Sampler) {
				rec := lf.Sampler[i]
				smp.runs[i].distance = int(rec.Distance)
				smp.runs[i].efficiency = rec.Efficiency
				smp.runs[i].exhausted = rec.Exhausted
			}
		}
		runstate.WarmCache(cfg.Cache, cfg.Resume.Manifest, r.Cols, r.Cards)
		stop()
	} else {
		nonFDs = sampling.NewNonFDSet(n)
		tree = fdtree.NewWithFullRHS(n)

		// Root validation finds the constant columns and seeds non-FDs.
		// Approximate runs skip sampling entirely: one exact violating pair
		// would refute an FD the g3 bound still admits, so the tree may only
		// specialize from approximate validation outcomes.
		rootWitness := nonFDs
		if approx {
			rootWitness = nil
		}
		rootValid := v.EmptyLHS(full, rootWitness)

		if !approx {
			// Initial sampling: one distance-1 run per column, sharded
			// across the run's pool.
			for c := 0; c < n; c++ {
				newN, comps, err := sampling.ClusterNeighborSampleSharded(ctx, pool, r, plis[c], 1, nonFDs, cfg.ShardSize)
				if err != nil {
					stop()
					pool.FoldRetryStats(rs)
					pool.FoldShardStats(rs)
					rs.Finish(err)
					return nil, stats, rs, err
				}
				_ = newN
				smp.runs[c].distance = 2
				stats.SamplingRounds++
				stats.Comparisons += comps
			}
		}
		stop()
		stop = rs.Phase("induct")
		inductAll(tree, full, nonFDs.Sets())
		if approx {
			if invalid := full.Difference(rootValid); !invalid.IsEmpty() {
				tree.Induct(bitset.New(n), invalid)
			}
		}
		stop()
		if cfg.TopK != nil {
			rootScore := 0
			if r.NumRows() >= 2 {
				rootScore = r.NumRows()
			}
			for a := rootValid.Next(0); a >= 0; a = rootValid.Next(a + 1) {
				rhs := bitset.New(n)
				rhs.Add(a)
				cfg.TopK.Admit(dep.FD{LHS: bitset.New(n), RHS: rhs}, rootScore)
			}
		}
	}
	processed := nonFDs.Len()

	// tick snapshots the boundary before validation level vl: levels below
	// it are fully validated and inducted, and the sampler's per-column
	// runs carry the phase-switching state, so a resumed run re-enters the
	// loop exactly at vl. Capturing clones the whole FD-tree, so
	// off-interval boundaries are skipped unless forced (terminal,
	// loop-top cancellation).
	tick := func(vl int, force bool) {
		if cfg.Checkpoint == nil || (!force && !cfg.Checkpoint.Due()) {
			return
		}
		f := &runstate.LevelFrontier{
			Version:         1,
			Level:           int64(vl),
			Validations:     int64(v.Validations),
			Invalidated:     int64(v.Invalidated),
			RowsScannedV:    int64(v.RowsScanned),
			ClustersRefined: int64(v.ClustersRefined),
			Comparisons:     int64(stats.Comparisons),
			SamplingRounds:  int64(stats.SamplingRounds),
			RowsScanned:     rs.RowsScanned,
			PartitionsBuilt: rs.PartitionsBuilt,
		}
		for i := range smp.runs {
			f.Sampler = append(f.Sampler, runstate.SamplerRec{
				Distance:   int64(smp.runs[i].distance),
				Efficiency: smp.runs[i].efficiency,
				Exhausted:  smp.runs[i].exhausted,
			})
		}
		st := runstate.StatsSnapOf(rs)
		cd := cfg.Cache.Stats().Delta(cache0)
		st.CacheHits = rs.CacheHits + cd.Hits
		st.CacheMisses = rs.CacheMisses + cd.Misses
		st.CacheEvicts = rs.CacheEvictions + cd.Evictions
		_ = cfg.Checkpoint.Tick(&runstate.Snapshot{
			Stats:    st,
			Tree:     runstate.TreeSnapOf(tree),
			NonFDs:   runstate.NonFDSnapOf(nonFDs, n),
			TopK:     runstate.TopKSnapOf(cfg.TopK),
			Manifest: runstate.ManifestOf(cfg.Cache, manifestMax),
			Frontier: runstate.FrontierSnap{Version: 1, Level: f},
		})
	}

	finish := func(err error) ([]dep.FD, Stats, *engine.RunStats, error) {
		stats.Validations = v.Validations
		stats.Invalidated = v.Invalidated
		stats.NonFDs = nonFDs.Len()
		rs.CandidatesValidated = int64(v.Validations)
		rs.Invalidated = int64(v.Invalidated)
		rs.RowsScanned += int64(v.RowsScanned) + 2*int64(stats.Comparisons)
		rs.PartitionsRefined += int64(v.ClustersRefined)
		rs.NonFDs = int64(stats.NonFDs)
		rs.Levels = int64(stats.Levels)
		rs.Count("sampling_rounds", int64(stats.SamplingRounds))
		rs.Count("sampling_comparisons", int64(stats.Comparisons))
		flushTopK()
		pool.FoldRetryStats(rs)
		pool.FoldShardStats(rs)
		rs.Finish(err)
		if cfg.TopK != nil {
			// The heap's FDs were each individually validated and minimal
			// on the data, so this stands as a sound (partial, under err)
			// top-k in ranking order.
			fds := cfg.TopK.FDs()
			stats.FDs = len(fds)
			rs.FDs = int64(stats.FDs)
			return fds, stats, rs, err
		}
		return nil, stats, rs, err
	}

	for vl := startLevel; vl <= tree.MaxLevel(); vl++ {
		if err := ctx.Err(); err != nil {
			// Level vl is untouched, so this is still a boundary: park
			// it for the final Flush and Ctrl-C loses nothing.
			tick(vl, true)
			return finish(err)
		}
		tick(vl, false)
		candidates := tree.NodesAtLevel(vl)
		stats.Levels++
		stop = rs.Phase("validate")
		validations, invalidated, invalids, err := validateLevel(ctx, pool, r, plis, candidates, v, nonFDs, &cfg)
		stop()
		if err != nil {
			return finish(err)
		}

		stop = rs.Phase("induct")
		inductAll(tree, full, nonFDs.Sets()[processed:])
		// Approximate runs specialize from the validation outcomes instead
		// of witness pairs: lhs → a failing the g3 bound fails for every
		// generalization too (monotonicity), which is exactly Induct's
		// removal semantics.
		for _, li := range invalids {
			tree.Induct(li.lhs, li.invalid)
		}
		stop()
		processed = nonFDs.Len()

		// Switch to sampling when the level went badly and the sampler can
		// still contribute; its non-FDs prune the deeper levels.
		if !approx && validations > 0 &&
			float64(invalidated) > cfg.InvalidSwitchRatio*float64(validations) &&
			smp.alive() {
			stop = rs.Phase("sample")
			if err := smp.phase(nonFDs, &stats); err != nil {
				stop()
				return finish(err)
			}
			stop()
			stop = rs.Phase("induct")
			inductAll(tree, full, nonFDs.Sets()[processed:])
			stop()
			processed = nonFDs.Len()
		}
	}

	if err := ctx.Err(); err != nil {
		return finish(err)
	}
	// Terminal boundary: the cursor is past every tree level, so resuming a
	// post-completion snapshot replays no validation and re-emits the same
	// cover.
	tick(tree.MaxLevel()+1, true)
	if cfg.TopK != nil {
		return finish(nil) // the collector's FDs, in ranking order
	}
	fds := dep.SplitRHS(tree.FDs())
	dep.Sort(fds)
	stats.FDs = len(fds)
	_, _, _, _ = finish(nil)
	rs.FDs = int64(stats.FDs)
	return fds, stats, rs, nil
}

// resumeLevel extracts a snapshot's level frontier, nil when the run
// starts cold or the snapshot belongs to another algorithm family.
func resumeLevel(s *runstate.Snapshot) *runstate.LevelFrontier {
	if s == nil || s.Frontier.Level == nil || s.Tree == nil {
		return nil
	}
	return s.Frontier.Level
}

// levelInvalid records one approximate invalidation: every RHS attribute
// of invalid failed the g3 bound at lhs, refuting lhs → a and (by
// monotonicity) every generalization.
type levelInvalid struct {
	lhs     bitset.Set
	invalid bitset.Set
}

// validateNode validates one FD-node: the fused top-k bound check and
// possible skip, the validator call, heap admissions of validated FDs,
// and — on approximate runs — the invalid RHS set for post-level
// induction. Safe to run concurrently for distinct nodes.
func validateNode(node *fdtree.Node, n int, plis []*partition.Partition, v *validate.Validator, nonFDs *sampling.NonFDSet, cfg *Config) (levelInvalid, bool) {
	lhs := node.Path(n)
	a := cheapestAttr(lhs, plis)
	if cfg.TopK != nil {
		// ‖π_lhs‖ — and the score of every FD specializing lhs — is at
		// most the smallest single-attribute partition size over lhs.
		if cfg.TopK.Prunable(plis[a].Size()) {
			node.Pruned = true
			return levelInvalid{}, false
		}
	}
	start := bitset.New(n)
	start.Add(a)
	valid := v.FD(lhs, node.RHS, plis[a], start, nonFDs)
	if cfg.TopK != nil && !valid.IsEmpty() {
		score := v.LastSize
		for b := valid.Next(0); b >= 0; b = valid.Next(b + 1) {
			rhs := bitset.New(n)
			rhs.Add(b)
			cfg.TopK.Admit(dep.FD{LHS: lhs, RHS: rhs}, score)
		}
	}
	if cfg.MaxViolations > 0 {
		if inv := node.RHS.Difference(valid); !inv.IsEmpty() {
			return levelInvalid{lhs: lhs, invalid: inv}, true
		}
	}
	return levelInvalid{}, false
}

// validateLevel validates one level's FD-nodes against refinements of the
// single-attribute partitions, fanning out over the pool when it is wider
// than one worker: each worker owns a validator and a local non-FD
// buffer, merged into v and nonFDs afterwards (even on cancellation, so
// partial runs report honestly). It returns the level's validation and
// invalidation counts — the inputs of the phase-switching heuristic —
// plus, on approximate runs, the per-node invalid sets in candidate order
// so induction stays deterministic for any worker count.
func validateLevel(ctx context.Context, pool *engine.Pool, r *relation.Relation, plis []*partition.Partition, candidates []*fdtree.Node, v *validate.Validator, nonFDs *sampling.NonFDSet, cfg *Config) (validations, invalidated int, invalids []levelInvalid, err error) {
	n := r.NumCols()
	approx := cfg.MaxViolations > 0
	witness := nonFDs
	if approx {
		witness = nil
	}
	workers := pool.Workers()
	if workers < 2 || len(candidates) < 4*workers {
		snap := v.Snapshot()
		for i, node := range candidates {
			if i%64 == 0 {
				if err := ctx.Err(); err != nil {
					validations, invalidated = v.Since(snap)
					return validations, invalidated, invalids, err
				}
			}
			if !node.IsFDNode() {
				continue
			}
			if li, ok := validateNode(node, n, plis, v, witness, cfg); ok {
				invalids = append(invalids, li)
			}
		}
		validations, invalidated = v.Since(snap)
		return validations, invalidated, invalids, nil
	}

	locals := make([]*sampling.NonFDSet, workers)
	validators := make([]*validate.Validator, workers)
	for w := 0; w < workers; w++ {
		locals[w] = sampling.NewNonFDSet(n)
		validators[w] = validate.New(r)
		validators[w].MaxViolations = cfg.MaxViolations
	}
	slots := make([]levelInvalid, len(candidates))
	found := make([]bool, len(candidates))
	err = pool.Run(ctx, len(candidates), func(w, i int) {
		node := candidates[i]
		if !node.IsFDNode() {
			return
		}
		local := locals[w]
		if approx {
			local = nil
		}
		slots[i], found[i] = validateNode(node, n, plis, validators[w], local, cfg)
	})
	for w := 0; w < workers; w++ {
		validations += validators[w].Validations
		invalidated += validators[w].Invalidated
		v.Validations += validators[w].Validations
		v.Invalidated += validators[w].Invalidated
		v.RowsScanned += validators[w].RowsScanned
		v.ClustersRefined += validators[w].ClustersRefined
		for _, x := range locals[w].Sets() {
			nonFDs.Add(x)
		}
	}
	for i, ok := range found {
		if ok {
			invalids = append(invalids, slots[i])
		}
	}
	return validations, invalidated, invalids, err
}

// inductAll sorts the given agree sets descending and inducts each.
func inductAll(tree *fdtree.Tree, full bitset.Set, sets []bitset.Set) {
	sorted := append([]bitset.Set(nil), sets...)
	sampling.SortSetsDescending(sorted)
	for _, x := range sorted {
		tree.Induct(x, full.Difference(x))
	}
}

// cheapestAttr picks the LHS attribute with the smallest partition size
// ‖π_A‖ (Algorithm 6, line 16).
func cheapestAttr(lhs bitset.Set, plis []*partition.Partition) int {
	best, bestSize := -1, -1
	for a := lhs.Next(0); a >= 0; a = lhs.Next(a + 1) {
		size := plis[a].Size()
		if best < 0 || size < bestSize {
			best, bestSize = a, size
		}
	}
	return best
}
