// Package check verifies FDs against data and reports the violating tuple
// pairs — the enforcement side of discovery: once a steward decides an FD
// from the ranking is a real constraint, violations point at the rows to
// repair (like the duplicate voter id behind the paper's σ4).
package check

import (
	"context"

	"repro/internal/bitset"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Violation is a pair of rows agreeing on an FD's LHS but differing on the
// given RHS attribute.
type Violation struct {
	Row1, Row2 int
	Attr       int
}

// FD returns up to limit violations of f on r (0 = all). An empty result
// means the FD holds.
func FD(r *relation.Relation, f dep.FD, limit int) []Violation {
	return fdViolations(r, f, limit, nil)
}

// fdViolations is FD with an optional PLI cache supplying (or receiving)
// the LHS partition. The cache must have been filled from the same
// relation r — VerifyCover guarantees that by dropping the cache when it
// verifies a row sample.
func fdViolations(r *relation.Relation, f dep.FD, limit int, cache *partition.Cache) []Violation {
	var out []Violation
	p := partition.ForAttrsCached(cache, f.LHS, r.Cols, r.Cards)
	for _, cluster := range p.Clusters {
		// Within a cluster all rows agree on the LHS; group by each RHS
		// attribute and report one witness per differing row.
		for a := f.RHS.Next(0); a >= 0; a = f.RHS.Next(a + 1) {
			first := cluster[0]
			for _, row := range cluster[1:] {
				if r.Cols[a][row] != r.Cols[a][first] {
					out = append(out, Violation{Row1: int(first), Row2: int(row), Attr: a})
					if limit > 0 && len(out) >= limit {
						return out
					}
				}
			}
		}
	}
	return out
}

// Holds reports whether f holds on r.
func Holds(r *relation.Relation, f dep.FD) bool {
	return len(FD(r, f, 1)) == 0
}

// All validates every FD of a cover and returns the violated ones with one
// witness each. Useful after new data arrives: re-check yesterday's cover.
func All(r *relation.Relation, fds []dep.FD) map[int]Violation {
	out := map[int]Violation{}
	for i, f := range fds {
		if v := FD(r, f, 1); len(v) > 0 {
			out[i] = v[0]
		}
	}
	return out
}

// VerifyOptions tunes VerifyCover.
type VerifyOptions struct {
	// SampleRows bounds the rows verified per FD: relations larger than
	// this are verified on their first SampleRows rows (a violation in
	// the sample disproves the FD on the whole relation, so sampling
	// never drops a valid FD — it can only fail to catch a violation
	// hiding in the tail). 0 applies DefaultSampleRows; negative
	// verifies every row.
	SampleRows int
	// Cache optionally supplies LHS partitions already built by the
	// discovery run (and receives the ones verification builds). It is
	// ignored whenever verification runs on a row sample: the sample is
	// a different relation, so cached full-relation partitions would be
	// wrong there.
	Cache *partition.Cache
	// MaxViolations verifies the cover approximately: an FD passes while
	// its g3-style violation count — the rows to delete for it to hold
	// exactly — stays at or below this bound. Deleting rows never raises
	// the count, so on a row sample the measured count is a lower bound:
	// sampled verification can refute an approximate FD but never
	// wrongly confirm one beyond what full verification would. 0 keeps
	// exact verification.
	MaxViolations int
	// Workers shards each FD's violation scan across a worker pool: the
	// LHS partition materializes through the sharded kernels and its
	// clusters split into ~ShardSize-row ranges scanned concurrently,
	// with the per-shard verdicts (or capped g3 counts) reconciled into
	// the pass/fail decision. Clusters violate independently, so the
	// decision matches the serial scan at every shard size. <= 1 keeps
	// the serial scan.
	Workers int
	// ShardSize is the rows per verification shard; 0 selects
	// partition.DefaultShardSize.
	ShardSize int
}

// DefaultSampleRows is the row-sample bound the post-run verifier uses
// when VerifyOptions leaves SampleRows zero.
const DefaultSampleRows = 100_000

// VerifyReport is the outcome of a post-run cover verification.
type VerifyReport struct {
	// Checked is the number of FDs verified; Violated how many failed.
	Checked, Violated int
	// Sound holds the FDs that passed, in input order.
	Sound []dep.FD
	// Sampled reports that verification ran on a row sample rather than
	// the full relation.
	Sampled bool
}

// VerifyCover re-validates every FD of a cover directly against the
// relation and splits the sound ones from the violated ones — the
// soundness gate a cancelled, degraded, or errored discovery run passes
// its partial cover through before anyone acts on it. It shares no
// mutable state with the run that produced the cover: each FD is checked
// from a partition built fresh or taken read-only from opts.Cache (the
// partitions there are immutable, so a buggy run cannot have corrupted
// them — at worst the cache holds a partition for a set the run never
// built, which is still a correct partition of the data).
//
// On cancellation — or a worker failure in the sharded scan — the error
// returns alongside the partial report: Sound then holds only the FDs
// already verified, which remains a sound (if conservative) cover.
// Callers verifying after a cancelled run pass a non-cancellable
// context (context.WithoutCancel) so the gate still completes.
func VerifyCover(ctx context.Context, r *relation.Relation, fds []dep.FD, opts VerifyOptions) (VerifyReport, error) {
	rep := VerifyReport{Checked: len(fds)}
	if len(fds) == 0 {
		return rep, nil
	}
	limit := opts.SampleRows
	if limit == 0 {
		limit = DefaultSampleRows
	}
	target := r
	if limit > 0 && r.NumRows() > limit {
		target = r.Head(limit)
		rep.Sampled = true
	}
	cache := opts.Cache
	if rep.Sampled {
		// The sample is a different relation: full-relation partitions
		// must neither serve nor enter the cache here.
		cache = nil
	}
	var pool *engine.Pool
	if opts.Workers > 1 {
		pool = engine.NewPool(opts.Workers)
	}
	rep.Sound = make([]dep.FD, 0, len(fds))
	for _, f := range fds {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		var sound bool
		var err error
		switch {
		case opts.MaxViolations > 0 && pool != nil:
			var total int
			total, err = fdG3ViolationsSharded(ctx, target, f, opts.MaxViolations, cache, pool, opts.ShardSize)
			sound = total <= opts.MaxViolations
		case opts.MaxViolations > 0:
			sound = fdG3Violations(target, f, opts.MaxViolations, cache) <= opts.MaxViolations
		case pool != nil:
			var violated bool
			violated, err = fdViolatedSharded(ctx, target, f, cache, pool, opts.ShardSize)
			sound = !violated
		default:
			sound = len(fdViolations(target, f, 1, cache)) == 0
		}
		if err != nil {
			return rep, err
		}
		if sound {
			rep.Sound = append(rep.Sound, f)
		} else {
			rep.Violated++
		}
	}
	return rep, nil
}

// fdViolatedSharded decides exact violation existence per-shard: the LHS
// partition materializes through the sharded kernels, its clusters
// split into ranges scanned concurrently, and any shard's witness
// refutes the FD — the same decision the serial one-witness scan makes.
func fdViolatedSharded(ctx context.Context, r *relation.Relation, f dep.FD, cache *partition.Cache, pool *engine.Pool, shardSize int) (bool, error) {
	p, _, err := partition.ForAttrsCachedSharded(ctx, pool, cache, f.LHS, r.Cols, r.Cards, shardSize)
	if err != nil {
		return false, err
	}
	cuts := partition.ShardClusters(p.Clusters, shardSize)
	nshards := len(cuts) - 1
	violated := make([]bool, nshards)
	err = pool.Run(ctx, nshards, func(_, s int) {
		violated[s] = clustersViolate(r, f, p.Clusters[cuts[s]:cuts[s+1]])
	})
	if err != nil {
		return false, err
	}
	for _, v := range violated {
		if v {
			return true, nil
		}
	}
	return false, nil
}

// clustersViolate reports whether any cluster of the range holds a
// witness pair against f.
func clustersViolate(r *relation.Relation, f dep.FD, clusters [][]int32) bool {
	for _, cluster := range clusters {
		for a := f.RHS.Next(0); a >= 0; a = f.RHS.Next(a + 1) {
			first := cluster[0]
			for _, row := range cluster[1:] {
				if r.Cols[a][row] != r.Cols[a][first] {
					return true
				}
			}
		}
	}
	return false
}

// fdG3ViolationsSharded counts g3 violations per-shard with per-shard
// limit caps. Clusters violate independently, so the reconciled sum
// decides "total > limit" exactly like the serial count: when a shard
// early-exits it alone exceeds the limit (the true total can only be
// larger), and when none does every per-shard count is exact.
func fdG3ViolationsSharded(ctx context.Context, r *relation.Relation, f dep.FD, limit int, cache *partition.Cache, pool *engine.Pool, shardSize int) (int, error) {
	p, _, err := partition.ForAttrsCachedSharded(ctx, pool, cache, f.LHS, r.Cols, r.Cards, shardSize)
	if err != nil {
		return 0, err
	}
	total := 0
	for a := f.RHS.Next(0); a >= 0; a = f.RHS.Next(a + 1) {
		cuts := partition.ShardClusters(p.Clusters, shardSize)
		nshards := len(cuts) - 1
		if nshards <= 0 {
			continue
		}
		counts := make([]int, nshards)
		col, card := r.Cols[a], r.Cards[a]
		err := pool.Run(ctx, nshards, func(_, s int) {
			counts[s] = partition.NewG3Counter(card).ViolationsClusters(p.Clusters[cuts[s]:cuts[s+1]], col, card, limit)
		})
		if err != nil {
			return 0, err
		}
		for _, c := range counts {
			total += c
		}
		if total > limit {
			return total, nil
		}
	}
	return total, nil
}

// fdG3Violations counts the g3 violations of f on r — the rows to delete
// so f holds exactly — summed over f's RHS attributes (covers are
// singleton-RHS in practice) and stopping early past limit.
func fdG3Violations(r *relation.Relation, f dep.FD, limit int, cache *partition.Cache) int {
	p := partition.ForAttrsCached(cache, f.LHS, r.Cols, r.Cards)
	total := 0
	for a := f.RHS.Next(0); a >= 0; a = f.RHS.Next(a + 1) {
		total += partition.G3Violations(p, r.Cols[a], r.Cards[a], limit)
		if total > limit {
			return total
		}
	}
	return total
}

// Keys verifies that an attribute set is unique on r, returning a
// duplicate row pair if not.
func Keys(r *relation.Relation, key bitset.Set) (int, int, bool) {
	p := partition.ForAttrs(key, r.Cols, r.Cards)
	for _, cluster := range p.Clusters {
		if len(cluster) >= 2 {
			return int(cluster[0]), int(cluster[1]), false
		}
	}
	return 0, 0, true
}
