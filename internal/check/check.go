// Package check verifies FDs against data and reports the violating tuple
// pairs — the enforcement side of discovery: once a steward decides an FD
// from the ranking is a real constraint, violations point at the rows to
// repair (like the duplicate voter id behind the paper's σ4).
package check

import (
	"repro/internal/bitset"
	"repro/internal/dep"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Violation is a pair of rows agreeing on an FD's LHS but differing on the
// given RHS attribute.
type Violation struct {
	Row1, Row2 int
	Attr       int
}

// FD returns up to limit violations of f on r (0 = all). An empty result
// means the FD holds.
func FD(r *relation.Relation, f dep.FD, limit int) []Violation {
	var out []Violation
	p := partition.ForAttrs(f.LHS, r.Cols, r.Cards)
	for _, cluster := range p.Clusters {
		// Within a cluster all rows agree on the LHS; group by each RHS
		// attribute and report one witness per differing row.
		for a := f.RHS.Next(0); a >= 0; a = f.RHS.Next(a + 1) {
			first := cluster[0]
			for _, row := range cluster[1:] {
				if r.Cols[a][row] != r.Cols[a][first] {
					out = append(out, Violation{Row1: int(first), Row2: int(row), Attr: a})
					if limit > 0 && len(out) >= limit {
						return out
					}
				}
			}
		}
	}
	return out
}

// Holds reports whether f holds on r.
func Holds(r *relation.Relation, f dep.FD) bool {
	return len(FD(r, f, 1)) == 0
}

// All validates every FD of a cover and returns the violated ones with one
// witness each. Useful after new data arrives: re-check yesterday's cover.
func All(r *relation.Relation, fds []dep.FD) map[int]Violation {
	out := map[int]Violation{}
	for i, f := range fds {
		if v := FD(r, f, 1); len(v) > 0 {
			out[i] = v[0]
		}
	}
	return out
}

// Keys verifies that an attribute set is unique on r, returning a
// duplicate row pair if not.
func Keys(r *relation.Relation, key bitset.Set) (int, int, bool) {
	p := partition.ForAttrs(key, r.Cols, r.Cards)
	for _, cluster := range p.Clusters {
		if len(cluster) >= 2 {
			return int(cluster[0]), int(cluster[1]), false
		}
	}
	return 0, 0, true
}
