package check

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/dep"
	"repro/internal/partition"
)

// randomCover builds a mix of holding and violated FDs on r.
func randomCover(rng *rand.Rand, r interface {
	NumCols() int
}) []dep.FD {
	n := r.NumCols()
	fds := make([]dep.FD, 0, 12)
	for i := 0; i < 12; i++ {
		lhs := bitset.New(n)
		for a := 0; a < n; a++ {
			if rng.Intn(2) == 0 {
				lhs.Add(a)
			}
		}
		a := rng.Intn(n)
		lhs.Remove(a)
		if lhs.Count() == 0 {
			continue
		}
		fds = append(fds, dep.FD{LHS: lhs, RHS: bitset.FromAttrs(n, a)})
	}
	return fds
}

func assertSameReport(t *testing.T, name string, want, got VerifyReport) {
	t.Helper()
	if want.Checked != got.Checked || want.Violated != got.Violated || want.Sampled != got.Sampled {
		t.Fatalf("%s: report = %d/%d/%v, want %d/%d/%v",
			name, got.Checked, got.Violated, got.Sampled, want.Checked, want.Violated, want.Sampled)
	}
	if len(want.Sound) != len(got.Sound) {
		t.Fatalf("%s: |Sound| = %d, want %d", name, len(got.Sound), len(want.Sound))
	}
	for i := range want.Sound {
		if !want.Sound[i].LHS.Equal(got.Sound[i].LHS) || !want.Sound[i].RHS.Equal(got.Sound[i].RHS) {
			t.Fatalf("%s: Sound[%d] = %v, want %v", name, i, got.Sound[i], want.Sound[i])
		}
	}
}

// TestVerifyCoverShardedMatches pins the sharded verifier contract: at
// every shard size and worker count, exact and g3-bounded verification
// reach the identical pass/fail decision per FD — so the report, its
// Sound list and its order equal the serial scan's.
func TestVerifyCoverShardedMatches(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		r := dataset.Random(rng, 200+rng.Intn(300), 3+rng.Intn(3), 1+rng.Intn(5))
		fds := randomCover(rng, r)
		for _, maxViol := range []int{0, 3, 25} {
			want, err := VerifyCover(ctx, r, fds, VerifyOptions{MaxViolations: maxViol})
			if err != nil {
				t.Fatal(err)
			}
			for _, shardSize := range []int{1, 7, 64, 1 << 16} {
				for _, workers := range []int{2, 4} {
					got, err := VerifyCover(ctx, r, fds, VerifyOptions{
						MaxViolations: maxViol, Workers: workers, ShardSize: shardSize,
					})
					if err != nil {
						t.Fatal(err)
					}
					name := "exact"
					if maxViol > 0 {
						name = "g3"
					}
					assertSameReport(t, name, want, got)
				}
			}
		}
	}
}

// TestVerifyCoverShardedCache: the sharded verifier must fill a cache
// interchangeably with the serial one — the same partitions land in it,
// byte-identical, so a second serial pass over a shard-filled cache hits
// every entry.
func TestVerifyCoverShardedCache(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(43))
	r := dataset.Random(rng, 400, 4, 3)
	fds := randomCover(rng, r)

	serialCache := partition.NewCache(1<<24, nil)
	shardCache := partition.NewCache(1<<24, nil)
	want, err := VerifyCover(ctx, r, fds, VerifyOptions{Cache: serialCache})
	if err != nil {
		t.Fatal(err)
	}
	got, err := VerifyCover(ctx, r, fds, VerifyOptions{Cache: shardCache, Workers: 3, ShardSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	assertSameReport(t, "cached", want, got)

	s0 := shardCache.Stats()
	if _, err := VerifyCover(ctx, r, fds, VerifyOptions{Cache: shardCache}); err != nil {
		t.Fatal(err)
	}
	d := shardCache.Stats().Delta(s0)
	if d.Misses != 0 {
		t.Fatalf("serial rerun over shard-filled cache missed %d times", d.Misses)
	}
}

// TestVerifyCoverCancelled: a cancelled context stops the sharded scan
// with the context error and a conservative partial report.
func TestVerifyCoverCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	r := dataset.Random(rng, 300, 4, 3)
	fds := randomCover(rng, r)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := VerifyCover(ctx, r, fds, VerifyOptions{Workers: 2})
	if err == nil {
		t.Fatal("cancelled verify returned nil error")
	}
	if len(rep.Sound) != 0 {
		t.Fatalf("cancelled-before-start verify proved %d FDs sound", len(rep.Sound))
	}
}
