package check

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/brute"
	"repro/internal/dataset"
	"repro/internal/dep"
	"repro/internal/relation"
)

func fd(n int, lhs []int, rhs ...int) dep.FD {
	return dep.FD{LHS: bitset.FromAttrs(n, lhs...), RHS: bitset.FromAttrs(n, rhs...)}
}

func TestFDViolations(t *testing.T) {
	// voter_id → state in the Table I snippet: voter 131 appears twice with
	// equal state, so that FD holds; voter_id → street_address is violated
	// by exactly that duplicate pair.
	r := dataset.NCVoterSnippet(relation.NullEqNull)
	n := r.NumCols()

	if !Holds(r, fd(n, []int{0}, 7)) {
		t.Error("voter_id → state should hold on the snippet")
	}
	violations := FD(r, fd(n, []int{0}, 5), 0)
	if len(violations) != 1 {
		t.Fatalf("violations = %v, want exactly the duplicate voter", violations)
	}
	v := violations[0]
	if v.Row1 != 0 || v.Row2 != 1 || v.Attr != 5 {
		t.Errorf("violation = %+v, want rows 0/1 attr 5", v)
	}
}

func TestFDLimit(t *testing.T) {
	// A constant LHS groups all rows; many violations, limit caps them.
	r := relation.FromCodes(nil, [][]int32{
		{0, 0, 0, 0},
		{0, 1, 2, 3},
	}, nil, relation.NullEqNull)
	all := FD(r, fd(2, []int{0}, 1), 0)
	if len(all) != 3 {
		t.Errorf("violations = %d, want 3", len(all))
	}
	capped := FD(r, fd(2, []int{0}, 1), 2)
	if len(capped) != 2 {
		t.Errorf("capped = %d", len(capped))
	}
}

func TestAll(t *testing.T) {
	r := relation.FromCodes(nil, [][]int32{
		{0, 0, 1},
		{5, 5, 6},
		{0, 1, 0},
	}, nil, relation.NullEqNull)
	fds := []dep.FD{
		fd(3, []int{0}, 1), // holds
		fd(3, []int{0}, 2), // violated
	}
	violated := All(r, fds)
	if len(violated) != 1 {
		t.Fatalf("violated = %v", violated)
	}
	if _, ok := violated[1]; !ok {
		t.Error("index 1 should be violated")
	}
}

func TestKeys(t *testing.T) {
	r := relation.FromCodes(nil, [][]int32{
		{0, 1, 2, 0},
		{0, 1, 2, 3},
	}, nil, relation.NullEqNull)
	if _, _, ok := Keys(r, bitset.FromAttrs(2, 0)); ok {
		t.Error("col0 has a duplicate")
	}
	if r1, r2, ok := Keys(r, bitset.FromAttrs(2, 1)); !ok {
		t.Errorf("col1 is unique; got pair %d/%d", r1, r2)
	}
	if _, _, ok := Keys(r, bitset.FromAttrs(2, 0, 1)); !ok {
		t.Error("col0+col1 is unique")
	}
}

// TestViolationsAgainstBrute: Holds must agree with the brute-force
// validity check on random relations and FDs.
func TestViolationsAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		r := dataset.Random(rng, 4+rng.Intn(30), 2+rng.Intn(4), 1+rng.Intn(4))
		n := r.NumCols()
		lhs := bitset.New(n)
		for a := 0; a < n; a++ {
			if rng.Intn(2) == 0 {
				lhs.Add(a)
			}
		}
		a := rng.Intn(n)
		lhs.Remove(a)
		f := fd(n, lhs.Attrs(), a)
		want := brute.HoldsSet(r, lhs, a)
		if got := Holds(r, f); got != want {
			t.Fatalf("trial %d: Holds=%v brute=%v for %v", trial, got, want, f)
		}
		// Every reported violation must be genuine.
		for _, v := range FD(r, f, 0) {
			for b := lhs.Next(0); b >= 0; b = lhs.Next(b + 1) {
				if r.Cols[b][v.Row1] != r.Cols[b][v.Row2] {
					t.Fatalf("trial %d: violation rows disagree on LHS attr %d", trial, b)
				}
			}
			if r.Cols[v.Attr][v.Row1] == r.Cols[v.Attr][v.Row2] {
				t.Fatalf("trial %d: violation rows agree on RHS", trial)
			}
		}
	}
}
