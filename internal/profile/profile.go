// Package profile assembles a data-profiling report: per-column statistics,
// unique column combinations (minimal keys of the data), the canonical FD
// cover and its redundancy ranking — the profiling workflow the paper's
// introduction frames FD discovery inside of.
package profile

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/normalize"
	"repro/internal/partition"
	"repro/internal/ranking"
	"repro/internal/relation"
)

// ValueCount is one entry of a column's most-frequent-values list.
type ValueCount struct {
	Value string
	Count int
}

// ColumnProfile summarizes one column.
type ColumnProfile struct {
	Name         string
	Distinct     int // active-domain size
	Nulls        int
	IsConstant   bool
	IsUnique     bool // no duplicated value: a single-column key
	TopValues    []ValueCount
	InFDsAsLHS   int // appearances in canonical-cover LHSs
	InFDsAsRHS   int // appearances in canonical-cover RHSs
	RedundantOcc int // redundant occurrences of this column under the cover
}

// Report is the complete profiling result.
type Report struct {
	Rows, Cols int
	Missing    int // total null occurrences

	Columns []ColumnProfile

	// Keys are the minimal unique column combinations of the data.
	Keys []bitset.Set
	// KeysTruncated reports whether the key enumeration hit its bound.
	KeysTruncated bool

	// Cover statistics.
	LeftReducedFDs int
	CanonicalFDs   int
	Ranked         []ranking.Ranked
	Totals         ranking.DatasetTotals

	DiscoveryTime time.Duration
	TotalTime     time.Duration

	// Run is the discovery run report: per-phase wall time and hot-path
	// counters (partial, with Cancelled set, when the profile was
	// interrupted).
	Run *engine.RunStats
}

// Options bound the potentially expensive parts of a profile.
type Options struct {
	// MaxKeys bounds unique-column-combination enumeration (default 64).
	MaxKeys int
	// TopValues is the number of frequent values kept per column
	// (default 3; requires the relation to retain dictionaries).
	TopValues int
	// Workers parallelizes discovery (default serial).
	Workers int
	// CacheBytes bounds a shared PLI cache routed through discovery
	// (0 = disabled).
	CacheBytes int64
}

func (o *Options) fillDefaults() {
	if o.MaxKeys <= 0 {
		o.MaxKeys = 64
	}
	if o.TopValues <= 0 {
		o.TopValues = 3
	}
}

// Profile computes the full report for a relation.
func Profile(r *relation.Relation, opts Options) *Report {
	//fdvet:ignore ctxflow ctx-less convenience wrapper; ProfileCtx is the primary API until=PR20
	rep, _ := ProfileCtx(context.Background(), r, opts)
	return rep
}

// ProfileCtx is Profile with cooperative cancellation: discovery — the
// dominant cost — aborts promptly once ctx is done, returning the partial
// report alongside ctx's error.
func ProfileCtx(ctx context.Context, r *relation.Relation, opts Options) (*Report, error) {
	opts.fillDefaults()
	start := time.Now()
	n := r.NumCols()

	rep := &Report{Rows: r.NumRows(), Cols: n}
	_, _, rep.Missing = r.IncompleteStats()

	// Discovery, cover, ranking.
	dstart := time.Now()
	cache := partition.NewCache(opts.CacheBytes, nil)
	lr, rs, err := core.DiscoverRun(ctx, r, core.Config{Workers: opts.Workers, Cache: cache})
	rep.DiscoveryTime = time.Since(dstart)
	rep.Run = rs
	if err != nil {
		rep.TotalTime = time.Since(start)
		return rep, err
	}
	can := cover.Canonical(n, lr)
	rep.LeftReducedFDs = len(lr)
	rep.CanonicalFDs = len(can)
	// Ranking shares the discovery run's PLI cache and worker width, and
	// its counters fold into the run report.
	rcfg := ranking.Config{Workers: opts.Workers, Cache: cache}
	var rkStats ranking.Stats
	rep.Ranked, rkStats, err = ranking.RankCtx(ctx, r, can, rcfg)
	if err == nil {
		var totStats ranking.Stats
		rep.Totals, totStats, err = ranking.TotalsCtx(ctx, r, can, rcfg)
		rkStats.PartitionsBuilt += totStats.PartitionsBuilt
		rkStats.PartitionsReused += totStats.PartitionsReused
		rkStats.RowsScanned += totStats.RowsScanned
		rkStats.CacheHits += totStats.CacheHits
		rkStats.CacheMisses += totStats.CacheMisses
		rkStats.CacheEvictions += totStats.CacheEvictions
	}
	rkStats.AddToRunStats(rep.Run)
	if err != nil {
		rep.TotalTime = time.Since(start)
		return rep, err
	}

	// Minimal keys of the data = candidate keys of the valid-FD cover.
	rep.Keys = normalize.CandidateKeys(n, can, opts.MaxKeys)
	rep.KeysTruncated = len(rep.Keys) >= opts.MaxKeys

	// Per-column statistics.
	perColRedundancy := make([]int, n)
	rk := ranking.NewWith(r, ranking.Config{Cache: cache})
	for _, f := range can {
		for a := f.RHS.Next(0); a >= 0; a = f.RHS.Next(a + 1) {
			rhs := bitset.New(n)
			rhs.Add(a)
			perColRedundancy[a] += rk.FD(dep.FD{LHS: f.LHS, RHS: rhs}).WithNulls
		}
	}
	rep.Columns = make([]ColumnProfile, n)
	for c := 0; c < n; c++ {
		col := ColumnProfile{
			Name:         r.Names[c],
			Distinct:     r.Cards[c],
			IsConstant:   r.Cards[c] <= 1,
			TopValues:    topValues(r, c, opts.TopValues),
			RedundantOcc: perColRedundancy[c],
		}
		if mask := r.Nulls[c]; mask != nil {
			for _, isNull := range mask {
				if isNull {
					col.Nulls++
				}
			}
		}
		col.IsUnique = uniqueColumn(r, c)
		for _, f := range can {
			if f.LHS.Contains(c) {
				col.InFDsAsLHS++
			}
			if f.RHS.Contains(c) {
				col.InFDsAsRHS++
			}
		}
		rep.Columns[c] = col
	}
	rep.TotalTime = time.Since(start)
	return rep, nil
}

func uniqueColumn(r *relation.Relation, c int) bool {
	seen := make(map[int32]bool, r.NumRows())
	for _, v := range r.Cols[c] {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func topValues(r *relation.Relation, c, k int) []ValueCount {
	counts := make(map[int32]int)
	for _, v := range r.Cols[c] {
		counts[v]++
	}
	codes := make([]int32, 0, len(counts))
	for v := range counts {
		codes = append(codes, v)
	}
	sort.Slice(codes, func(i, j int) bool {
		if counts[codes[i]] != counts[codes[j]] {
			return counts[codes[i]] > counts[codes[j]]
		}
		return codes[i] < codes[j]
	})
	if len(codes) > k {
		codes = codes[:k]
	}
	out := make([]ValueCount, len(codes))
	for i, v := range codes {
		label := fmt.Sprintf("#%d", v)
		if r.Dicts != nil && r.Dicts[c] != nil && int(v) < len(r.Dicts[c]) {
			label = r.Dicts[c][v]
		}
		out[i] = ValueCount{Value: label, Count: counts[v]}
	}
	return out
}

// Write renders the report as a human-readable profiling summary.
func (rep *Report) Write(w io.Writer, names []string) {
	fmt.Fprintf(w, "rows: %d   columns: %d   missing values: %d\n",
		rep.Rows, rep.Cols, rep.Missing)
	fmt.Fprintf(w, "FDs: %d left-reduced, %d canonical   discovery: %v   total: %v\n",
		rep.LeftReducedFDs, rep.CanonicalFDs,
		rep.DiscoveryTime.Round(time.Millisecond), rep.TotalTime.Round(time.Millisecond))
	fmt.Fprintf(w, "redundancy: %d of %d values (%.1f%%), %d incl. nulls (%.1f%%)\n",
		rep.Totals.Red, rep.Totals.Values, rep.Totals.PercentRed(),
		rep.Totals.RedWithNulls, rep.Totals.PercentRedWithNulls())
	if rep.Run != nil {
		fmt.Fprintf(w, "discovery phases (%s, %d workers):", rep.Run.Algorithm, rep.Run.Workers)
		for _, ph := range rep.Run.Phases {
			fmt.Fprintf(w, " %s=%v", ph.Name, ph.Duration.Round(time.Millisecond))
		}
		fmt.Fprintf(w, "; %d candidates validated, %d rows scanned, %d partitions refined\n",
			rep.Run.CandidatesValidated, rep.Run.RowsScanned, rep.Run.PartitionsRefined)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "columns:")
	fmt.Fprintf(w, "  %-20s %9s %7s %5s %7s %7s %9s  %s\n",
		"name", "distinct", "nulls", "key?", "in LHS", "in RHS", "redundant", "top values")
	for _, col := range rep.Columns {
		key := ""
		if col.IsUnique {
			key = "KEY"
		} else if col.IsConstant {
			key = "CONST"
		}
		tops := ""
		for i, tv := range col.TopValues {
			if i > 0 {
				tops += ", "
			}
			tops += fmt.Sprintf("%s×%d", tv.Value, tv.Count)
		}
		fmt.Fprintf(w, "  %-20s %9d %7d %5s %7d %7d %9d  %s\n",
			col.Name, col.Distinct, col.Nulls, key, col.InFDsAsLHS, col.InFDsAsRHS,
			col.RedundantOcc, tops)
	}

	fmt.Fprintf(w, "\nminimal keys (%d", len(rep.Keys))
	if rep.KeysTruncated {
		fmt.Fprint(w, ", truncated")
	}
	fmt.Fprintln(w, "):")
	for i, k := range rep.Keys {
		if i == 10 {
			fmt.Fprintf(w, "  … %d more\n", len(rep.Keys)-i)
			break
		}
		fmt.Fprintf(w, "  (%s)\n", k.Names(names))
	}

	fmt.Fprintln(w, "\ntop FDs by redundancy (#red+0 / #red / #red-0):")
	for i, rk := range rep.Ranked {
		if i == 10 {
			fmt.Fprintf(w, "  … %d more\n", len(rep.Ranked)-i)
			break
		}
		fmt.Fprintf(w, "  %6d / %6d / %6d   %s\n",
			rk.Counts.WithNulls, rk.Counts.NoNullRHS, rk.Counts.NoNulls, rk.FD.Format(names))
	}
}
