package profile

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/relation"
)

func TestProfileNCVoterSnippet(t *testing.T) {
	r := dataset.NCVoterSnippet(relation.NullEqNull)
	rep := Profile(r, Options{})

	if rep.Rows != 14 || rep.Cols != 9 {
		t.Fatalf("dims %dx%d", rep.Rows, rep.Cols)
	}
	if rep.Missing != 14 {
		t.Errorf("missing = %d, want 14 (all name_suffix)", rep.Missing)
	}
	if rep.CanonicalFDs == 0 || rep.CanonicalFDs > rep.LeftReducedFDs {
		t.Errorf("cover sizes: %d canonical, %d left-reduced", rep.CanonicalFDs, rep.LeftReducedFDs)
	}
	if len(rep.Ranked) != rep.CanonicalFDs {
		t.Errorf("ranked %d of %d", len(rep.Ranked), rep.CanonicalFDs)
	}
	if len(rep.Keys) == 0 {
		t.Error("no keys found")
	}

	// state is constant; name_suffix all-null (also constant under null=null).
	state := rep.Columns[7]
	if !state.IsConstant || state.Distinct != 1 {
		t.Errorf("state profile: %+v", state)
	}
	suffix := rep.Columns[3]
	if suffix.Nulls != 14 {
		t.Errorf("suffix nulls = %d", suffix.Nulls)
	}
	// street_address is NOT unique in the snippet — the futrell couple
	// shares "9802 us hwy 258" — and neither is voter_id (duplicate 131).
	if rep.Columns[5].IsUnique {
		t.Errorf("street has a duplicate: %+v", rep.Columns[5])
	}
	if rep.Columns[0].IsUnique {
		t.Errorf("voter_id 131 is duplicated: %+v", rep.Columns[0])
	}
	// Top values must come from the retained dictionaries.
	last := rep.Columns[2]
	if len(last.TopValues) == 0 || last.TopValues[0].Value != "johnson" || last.TopValues[0].Count != 6 {
		t.Errorf("last_name top values: %+v", last.TopValues)
	}
}

func TestProfileWriteIsReadable(t *testing.T) {
	r := dataset.NCVoterSnippet(relation.NullEqNull)
	rep := Profile(r, Options{})
	var buf bytes.Buffer
	rep.Write(&buf, r.Names)
	out := buf.String()
	for _, want := range []string{"rows: 14", "minimal keys", "top FDs", "last_name", "johnson"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestProfileParallelMatchesSerial(t *testing.T) {
	b, _ := dataset.ByName("ncvoter")
	r := b.Generate(400, 12)
	serial := Profile(r, Options{})
	par := Profile(r, Options{Workers: 4})
	if serial.CanonicalFDs != par.CanonicalFDs || serial.LeftReducedFDs != par.LeftReducedFDs {
		t.Errorf("parallel profile diverges: %d/%d vs %d/%d",
			serial.LeftReducedFDs, serial.CanonicalFDs, par.LeftReducedFDs, par.CanonicalFDs)
	}
	if serial.Totals != par.Totals {
		t.Errorf("totals diverge")
	}
}

func TestProfileKeysAreDataKeys(t *testing.T) {
	// Every reported key must actually be unique in the data.
	b, _ := dataset.ByName("bridges")
	r := b.GenerateDefault()
	rep := Profile(r, Options{MaxKeys: 16})
	for _, k := range rep.Keys {
		seen := map[string]bool{}
		key := make([]byte, 0, 32)
		for row := 0; row < r.NumRows(); row++ {
			key = key[:0]
			for a := k.Next(0); a >= 0; a = k.Next(a + 1) {
				v := r.Cols[a][row]
				key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			if seen[string(key)] {
				t.Fatalf("reported key %v has duplicate rows", k)
			}
			seen[string(key)] = true
		}
	}
}
