package core

import (
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/dataset"
	"repro/internal/dep"
	"repro/internal/relation"
)

func TestDiscoverTiny(t *testing.T) {
	r := relation.FromCodes(nil, [][]int32{
		{0, 0, 1, 1},
		{5, 5, 6, 6},
		{0, 1, 0, 1},
	}, nil, relation.NullEqNull)
	got := Discover(r)
	want := brute.MinimalFDs(r)
	if !dep.Equal(got, want) {
		a, b := dep.Diff(got, want, r.Names)
		t.Fatalf("only dhyfd %v, only brute %v", a, b)
	}
}

func TestDiscoverDegenerate(t *testing.T) {
	if got := Discover(relation.FromCodes(nil, nil, nil, relation.NullEqNull)); len(got) != 0 {
		t.Errorf("no columns: %v", got)
	}
	one := relation.FromCodes(nil, [][]int32{{0}, {3}}, nil, relation.NullEqNull)
	got := Discover(one)
	if len(got) != 2 {
		t.Errorf("single row: %v", got)
	}
	for _, f := range got {
		if f.LHS.Count() != 0 {
			t.Errorf("single row FD should have empty LHS: %v", f)
		}
	}
}

func TestAgainstBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 50; trial++ {
		rows := 4 + rng.Intn(40)
		cols := 2 + rng.Intn(6)
		card := 1 + rng.Intn(4)
		r := dataset.Random(rng, rows, cols, card)
		got := Discover(r)
		want := brute.MinimalFDs(r)
		if !dep.Equal(got, want) {
			a, b := dep.Diff(got, want, r.Names)
			t.Fatalf("trial %d (%dx%d card %d): only dhyfd %v, only brute %v",
				trial, rows, cols, card, a, b)
		}
	}
}

func TestAgainstBruteMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 20; trial++ {
		r := dataset.RandomMixed(rng, 20+rng.Intn(100), 3+rng.Intn(5))
		got := Discover(r)
		want := brute.MinimalFDs(r)
		if !dep.Equal(got, want) {
			a, b := dep.Diff(got, want, r.Names)
			t.Fatalf("trial %d: only dhyfd %v, only brute %v", trial, a, b)
		}
	}
}

// TestRatioDoesNotChangeResults: the efficiency–inefficiency ratio is a
// performance knob; any value must produce the same cover.
func TestRatioDoesNotChangeResults(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 8; trial++ {
		r := dataset.RandomMixed(rng, 40+rng.Intn(100), 4+rng.Intn(4))
		want := brute.MinimalFDs(r)
		for _, ratio := range []float64{0.01, 0.5, 3.0, 1e12} {
			got, _ := DiscoverWithConfig(r, Config{Ratio: ratio})
			if !dep.Equal(got, want) {
				a, b := dep.Diff(got, want, r.Names)
				t.Fatalf("trial %d ratio %g: only dhyfd %v, only brute %v", trial, ratio, a, b)
			}
		}
	}
}

// TestDDMRefinementTriggers: on data with many valid FDs at shallow levels
// the ratio fires and partitions are refreshed; the aggressive ratio must
// refresh at least as often as the disabled one.
func TestDDMRefinementTriggers(t *testing.T) {
	// Valid FDs at level 2 ({0,1}→6) raise efficiency early while the
	// low-cardinality categoricals keep many deeper FDs pending, so the
	// aggressive ratio must fire.
	r := dataset.Generate(dataset.Spec{
		Name: "deep", Rows: 200, Seed: 9,
		Columns: []dataset.Column{
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Derived, Deps: []int{0, 1}, Card: 100},
		},
	})
	_, aggressive := DiscoverWithConfig(r, Config{Ratio: 0.001})
	_, disabled := DiscoverWithConfig(r, Config{Ratio: 1e12})
	if disabled.Refinements != 0 {
		t.Errorf("disabled ratio still refined %d times", disabled.Refinements)
	}
	if aggressive.Refinements == 0 {
		t.Errorf("aggressive ratio never refined; stats: %+v", aggressive)
	}
	if aggressive.PeakDynPartCount == 0 || aggressive.PeakDynPartRows == 0 {
		t.Errorf("peak memory proxies empty: %+v", aggressive)
	}
}

func TestStatsPopulated(t *testing.T) {
	r := dataset.Generate(dataset.Spec{
		Name: "stats", Rows: 300, Seed: 5,
		Columns: []dataset.Column{
			{Kind: dataset.Categorical, Card: 6},
			{Kind: dataset.Categorical, Card: 6},
			{Kind: dataset.Categorical, Card: 6},
			{Kind: dataset.Derived, Deps: []int{0, 1}, Card: 40},
		},
	})
	fds, stats := DiscoverWithConfig(r, DefaultConfig())
	if stats.FDs != len(fds) || stats.FDs == 0 {
		t.Errorf("stats.FDs = %d, len = %d", stats.FDs, len(fds))
	}
	if stats.InitialNonFDs == 0 || stats.Comparisons == 0 {
		t.Errorf("sampling stats empty: %+v", stats)
	}
	if stats.Validations == 0 || stats.Levels == 0 {
		t.Errorf("validation stats empty: %+v", stats)
	}
	if stats.NonFDs < stats.InitialNonFDs {
		t.Errorf("total non-FDs below initial: %+v", stats)
	}
}

// TestAllNullRelation: a relation of only nulls under null=null is a
// constant relation — every ∅ → A holds.
func TestAllNullRelation(t *testing.T) {
	rows := make([][]string, 10)
	for i := range rows {
		rows[i] = []string{"", ""}
	}
	r, err := relation.FromRows([]string{"a", "b"}, rows, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := Discover(r)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	for _, f := range got {
		if f.LHS.Count() != 0 {
			t.Errorf("want empty LHS: %v", f)
		}
	}
}

// TestNullSemanticsChangeFDs: under null≠null a column of nulls acts like
// a key, flipping which FDs hold.
func TestNullSemanticsChangeFDs(t *testing.T) {
	raw := [][]string{
		{"", "x"},
		{"", "y"},
		{"", "x"},
	}
	eq, err := relation.FromRows([]string{"a", "b"}, raw, relation.Options{Semantics: relation.NullEqNull})
	if err != nil {
		t.Fatal(err)
	}
	neq, err := relation.FromRows([]string{"a", "b"}, raw, relation.Options{Semantics: relation.NullNeqNull})
	if err != nil {
		t.Fatal(err)
	}
	gotEq := Discover(eq)   // a is constant: ∅→a holds; a→b fails (x vs y)
	gotNeq := Discover(neq) // a is a key: a→b holds minimally
	if !dep.Equal(gotEq, brute.MinimalFDs(eq)) {
		t.Error("null=null cover wrong")
	}
	if !dep.Equal(gotNeq, brute.MinimalFDs(neq)) {
		t.Error("null≠null cover wrong")
	}
	if dep.Equal(gotEq, gotNeq) {
		t.Error("semantics should change the cover on this data")
	}
}

// TestParallelValidationMatchesSerial: the Workers knob must not change
// the cover — witness collection order differs, but the sorted induction
// and set-semantics dedup make results deterministic.
func TestParallelValidationMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 6; trial++ {
		r := dataset.RandomMixed(rng, 150+rng.Intn(150), 5+rng.Intn(4))
		serial, _ := DiscoverWithConfig(r, Config{Ratio: 3})
		for _, workers := range []int{2, 4, 8} {
			par, _ := DiscoverWithConfig(r, Config{Ratio: 3, Workers: workers})
			if !dep.Equal(serial, par) {
				a, b := dep.Diff(serial, par, r.Names)
				t.Fatalf("trial %d workers %d: serial vs parallel: %v / %v", trial, workers, a, b)
			}
		}
	}
}

// TestParallelStatsConsistent: counters must aggregate across workers.
func TestParallelStatsConsistent(t *testing.T) {
	b, _ := dataset.ByName("ncvoter")
	r := b.Generate(500, 12)
	_, serial := DiscoverWithConfig(r, Config{Ratio: 3})
	_, par := DiscoverWithConfig(r, Config{Ratio: 3, Workers: 4})
	if par.FDs != serial.FDs {
		t.Errorf("FD counts differ: %d vs %d", par.FDs, serial.FDs)
	}
	if par.Validations == 0 || par.Invalidated == 0 {
		t.Errorf("parallel counters empty: %+v", par)
	}
}

// TestExample5Ratio pins the efficiency–inefficiency arithmetic to the
// paper's Example 5 numbers.
func TestExample5Ratio(t *testing.T) {
	if got := EfficiencyInefficiencyRatio(1, 1, 2, 5); got != 2.5 {
		t.Errorf("left tree of Example 5: ratio = %v, want 2.5", got)
	}
	if got := EfficiencyInefficiencyRatio(1, 2, 2, 3); got != 0.75 {
		t.Errorf("right tree of Example 5: ratio = %v, want 0.75", got)
	}
}
