package core

import (
	"testing"

	"repro/internal/brute"
	"repro/internal/dep"
	"repro/internal/fdep"
	"repro/internal/relation"
)

// FuzzDiscoverMatchesBrute decodes arbitrary bytes into a small relation
// and checks DHyFD (and FDEP2 as a second, independent implementation)
// against the exponential oracle. Run with:
//
//	go test -fuzz=FuzzDiscoverMatchesBrute ./internal/core
//
// Without -fuzz the seed corpus still runs as a regression test.
func FuzzDiscoverMatchesBrute(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 0, 1, 2, 0, 1, 2})
	f.Add([]byte{2, 0, 0, 0, 0, 1, 1, 1, 1})
	f.Add([]byte{4, 1, 2, 3, 4, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{5, 0})
	f.Add([]byte{1, 9, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := decodeRelation(data)
		if r == nil {
			return
		}
		got := Discover(r)
		want := brute.MinimalFDs(r)
		if !dep.Equal(got, want) {
			a, b := dep.Diff(got, want, r.Names)
			t.Fatalf("dhyfd vs brute on %dx%d: only dhyfd %v, only brute %v",
				r.NumRows(), r.NumCols(), a, b)
		}
		second := fdep.Discover(r, fdep.Sorted)
		if !dep.Equal(second, want) {
			t.Fatalf("fdep2 vs brute diverge")
		}
	})
}

// decodeRelation interprets fuzz bytes as: first byte = number of columns
// (1..6), remaining bytes = row-major codes modulo a small cardinality.
// Returns nil when the input is too small to form at least one row.
func decodeRelation(data []byte) *relation.Relation {
	if len(data) < 2 {
		return nil
	}
	ncols := int(data[0])%6 + 1
	body := data[1:]
	nrows := len(body) / ncols
	if nrows < 1 {
		return nil
	}
	if nrows > 48 {
		nrows = 48 // keep the oracle cheap
	}
	cols := make([][]int32, ncols)
	for c := 0; c < ncols; c++ {
		col := make([]int32, nrows)
		for i := 0; i < nrows; i++ {
			col[i] = int32(body[i*ncols+c] % 5)
		}
		cols[c] = col
	}
	return relation.FromCodes(nil, cols, nil, relation.NullEqNull)
}
