// Package core implements DHyFD, the dynamic hybrid FD discovery algorithm
// that is the paper's primary contribution (Section IV).
//
// DHyFD follows the column-based approach over an extended FD-tree but
// uses a dynamic data manager (DDM) as a row-based technique whenever many
// FDs are likely to be valid. The DDM maintains an array of stripped
// partitions rooted at the current controlled level of the tree; node ids
// index that array, so validating the FDs of deeper levels refines an
// already-computed partition instead of starting from single-attribute
// partitions every time (HyFD's behaviour).
//
// The decision to spend memory on refreshed partitions is taken per
// validation level by the efficiency–inefficiency ratio: efficiency is the
// fraction of the level's FDs that turned out valid; inefficiency is the
// fraction of reusable nodes (validated nodes with live children) over the
// FDs still waiting at higher levels. A high ratio means validated
// partitions will be shared by many descendants, so refinement pays off
// (Section IV-G; the experiments of Figure 6 fix the threshold at 3).
//
// Sampling happens exactly once, before the main loop (sorted-neighborhood
// pair selection over the single-attribute partitions), and every FD
// validation doubles as further sampling: witness pairs of invalid FDs
// are genuine non-FDs fed back into synergized induction.
//
// Both validation hot paths run on the shared engine.Pool: per-level
// candidate validation fans out over per-worker validators, and DDM
// refreshes batch their partition refinements through
// partition.RefineBatch. Workers: 1 keeps the paper's serial behaviour.
package core

import (
	"context"

	"repro/internal/bitset"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/fdtree"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/runstate"
	"repro/internal/sampling"
	"repro/internal/topk"
	"repro/internal/validate"
)

// manifestMax caps how many PLI-cache keys a checkpoint snapshot records.
const manifestMax = 64

// Config tunes DHyFD.
type Config struct {
	// Ratio is the efficiency–inefficiency threshold above which the DDM
	// refreshes its partitions (Algorithm 6, line 26). The paper tunes it
	// to 3.0 (Figure 6). Set it very large to disable refreshes entirely,
	// which degenerates DHyFD into a validate-from-singletons hybrid.
	Ratio float64
	// Workers sets the engine.Pool width used to validate a level's
	// candidates and to refresh the DDM's partitions — an extension
	// beyond the paper's single-threaded implementation. Validation of
	// distinct FD-nodes is independent (the DDM is read-only during a
	// level), so levels parallelize cleanly; induction remains
	// sequential. Values below 2 keep the paper's serial behaviour.
	Workers int
	// ShardSize is the row-block size of the sharded single-attribute
	// partition bootstrap: columns longer than one shard group and merge
	// on the worker pool instead of serially. <= 0 selects
	// partition.DefaultShardSize.
	ShardSize int
	// Budget optionally bounds partition memory. On exhaustion DHyFD
	// stops refreshing the DDM (falling back to single-attribute
	// partitions, which keeps the cover complete and sound) and flags
	// the run report Degraded. Nil means unlimited.
	Budget *partition.Budget
	// Cache optionally shares stripped partitions across the run (and
	// across runs over the same relation): the DDM publishes its
	// refreshed partitions and starts refreshes from the smallest-error
	// cached subset when a node has no consistent slot. Nil disables
	// caching.
	Cache *partition.Cache
	// TopK, when non-nil, fuses redundancy-ranked top-k selection into
	// validation: validated FDs are offered to the collector scored by
	// ‖π_LHS‖ (the validator's LastSize) and candidate nodes whose best
	// reachable score — the smallest single-attribute partition size over
	// their LHS, an upper bound on ‖π_LHS‖ and on every specialization —
	// cannot beat the admission threshold are skipped. The run returns
	// the collector's FDs in ranking order instead of the full cover.
	TopK *topk.Collector
	// MaxViolations relaxes validation to the g3-style bound: lhs → A
	// counts as valid while at most MaxViolations rows must be deleted
	// for it to hold exactly. Positive values disable pair sampling
	// (exact violating pairs must not refute approximately valid FDs);
	// the search tree specializes from validation outcomes instead,
	// which monotonicity makes sound. 0 keeps exact discovery.
	MaxViolations int
	// Checkpoint, when non-nil, snapshots the FD-tree, non-FD set and
	// level cursor at every validation-level boundary so a killed run can
	// resume. Nil disables durability.
	Checkpoint *runstate.Checkpointer
	// Resume, when non-nil, seeds the run from a snapshot's level frontier:
	// the tree and non-FD set are restored and validation restarts at the
	// cursor. The DDM is rebuilt cold — restored node ids fall back to
	// single-attribute partitions, which is slower but changes nothing
	// about the cover. The caller has already fingerprint-matched it.
	Resume *runstate.Snapshot
	// Retries bounds supervised re-runs of transiently failed pool items
	// (capped exponential backoff with full jitter). 0 disables retries.
	Retries int
}

// DefaultConfig returns the paper's tuned configuration.
func DefaultConfig() Config { return Config{Ratio: 3.0} }

func (c *Config) fillDefaults() {
	if c.Ratio == 0 {
		c.Ratio = 3.0
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
}

// Stats reports the DHyFD-specific measures of a run; the algorithm-
// agnostic view (phase timings, hot-path counters, cancellation state)
// is the engine.RunStats that DiscoverRun returns.
type Stats struct {
	InitialNonFDs    int // distinct agree sets from the one-shot sampling
	Comparisons      int // tuple pairs compared by the one-shot sampling
	NonFDs           int // total distinct agree sets (sampling + validation)
	Validations      int // (node, RHS attr) validations
	Invalidated      int // validations that failed
	Levels           int // validation levels processed
	Refinements      int // DDM refreshes (controlled-level advances)
	PeakDynPartRows  int // max Σ‖π‖ held by the DDM at once (memory proxy)
	PeakDynPartCount int // max number of dynamic partitions held at once
	FDs              int // FDs in the output cover
}

// ddm is the dynamic data manager: pre-computed single-attribute stripped
// partitions plus one array of dynamic partitions per controlled-level
// epoch. Node ids below NumCols index singles; ids >= NumCols index the
// dynamic array, valid only while the node's epoch matches (stale ids are
// the paper's "inconsistent" ids and fall back to singles).
type ddm struct {
	r       *relation.Relation
	singles []*partition.Partition
	epoch   int
	slots   []dynPartition
	budget  *partition.Budget
	cache   *partition.Cache
}

type dynPartition struct {
	part  *partition.Partition
	attrs bitset.Set
}

func newDDM(ctx context.Context, pool *engine.Pool, r *relation.Relation, cfg *Config) (*ddm, int, error) {
	m := &ddm{
		r:      r,
		epoch:  1,
		budget: cfg.Budget,
		cache:  cfg.Cache,
	}
	singles, built, err := partition.Singles(ctx, pool, r.Cols, r.Cards, cfg.ShardSize, cfg.Cache, cfg.Budget)
	m.singles = singles
	return m, built, err
}

// partitionFor returns a stripped partition π_X′ with X′ ⊆ lhs for the
// node, preferring the node's dynamic partition when its id is consistent.
// Nodes with default or stale ids get the cheapest single-attribute
// partition of their path (Algorithm 6, lines 15–16) and their id is reset
// accordingly.
func (m *ddm) partitionFor(node *fdtree.Node, lhs bitset.Set) (*partition.Partition, bitset.Set) {
	n := len(m.singles)
	if node.ID >= n && node.Epoch == m.epoch {
		slot := m.slots[node.ID-n]
		if slot.attrs.IsSubsetOf(lhs) {
			return slot.part, slot.attrs
		}
	}
	best, bestSize := -1, -1
	for a := lhs.Next(0); a >= 0; a = lhs.Next(a + 1) {
		if size := m.singles[a].Size(); best < 0 || size < bestSize {
			best, bestSize = a, size
		}
	}
	node.ID, node.Epoch = best, 0
	attrs := bitset.New(n)
	attrs.Add(best)
	return m.singles[best], attrs
}

// update implements Algorithm 3: a new dynamic array is built from the
// reusable nodes at the new controlled level. Each node's partition starts
// from its consistent dynamic partition (or its own singleton) and is
// refined by the missing path attributes — refinements run as one
// partition.RefineBatchPool on the caller's worker pool, since the jobs
// are independent (and the pool's retry policy supervises them); the node
// then receives the new slot id and propagates it to its descendants. On
// cancellation the DDM is left untouched (the old epoch stays consistent)
// and ctx's error is returned.
func (m *ddm) update(ctx context.Context, pool *engine.Pool, reusables []*fdtree.Node) error {
	if err := faults.Hit(faults.DDMRefresh); err != nil {
		return err
	}
	n := len(m.singles)
	jobs := make([]partition.RefineJob, len(reusables))
	lhss := make([]bitset.Set, len(reusables))
	for k, node := range reusables {
		lhs := node.Path(n)
		lhss[k] = lhs
		var p *partition.Partition
		var attrs bitset.Set
		if node.ID >= n && node.Epoch == m.epoch {
			slot := m.slots[node.ID-n]
			if slot.attrs.IsSubsetOf(lhs) {
				p, attrs = slot.part, slot.attrs
			}
		}
		if p == nil {
			// No consistent slot: prefer the longest cached prefix of
			// the path over restarting from a single.
			if cp, cattrs := m.cache.LongestPrefix(lhs); cp != nil {
				p, attrs = cp, cattrs
			} else {
				a := node.Attr
				p, attrs = m.singles[a], bitset.FromAttrs(n, a)
			}
		}
		job := partition.RefineJob{Part: p}
		for b := lhs.Next(0); b >= 0; b = lhs.Next(b + 1) {
			if attrs.Contains(b) {
				continue
			}
			job.Cols = append(job.Cols, m.r.Cols[b])
			job.Cards = append(job.Cards, m.r.Cards[b])
		}
		jobs[k] = job
	}
	parts, err := partition.RefineBatchPool(ctx, pool, jobs)
	if err != nil {
		return err
	}
	m.epoch++
	newSlots := make([]dynPartition, 0, len(reusables))
	for k, node := range reusables {
		node.ID = n + len(newSlots)
		node.Epoch = m.epoch
		newSlots = append(newSlots, dynPartition{part: parts[k], attrs: lhss[k]})
		fdtree.PropagateID(node)
		m.budget.Charge(parts[k])
		m.cache.Put(lhss[k], parts[k])
	}
	// The replaced epoch's partitions are garbage now; return their bytes.
	// A reused (unrefined) slot aliases its old partition, so the charge
	// above and this release net out for it.
	for _, s := range m.slots {
		m.budget.Release(s.part)
	}
	m.slots = newSlots
	return nil
}

// rows returns Σ‖π‖ over the dynamic array, the memory proxy of Figure 7.
func (m *ddm) rows() int {
	total := 0
	for _, s := range m.slots {
		total += s.part.Size()
	}
	return total
}

// Discover returns the left-reduced cover of the FDs holding on r.
func Discover(r *relation.Relation) []dep.FD {
	fds, _ := DiscoverWithConfig(r, DefaultConfig())
	return fds
}

// DiscoverWithConfig runs DHyFD with explicit tuning and returns run
// statistics alongside the cover.
func DiscoverWithConfig(r *relation.Relation, cfg Config) ([]dep.FD, Stats) {
	//fdvet:ignore ctxflow ctx-less convenience wrapper; DiscoverCtx is the primary API until=PR20
	fds, stats, _ := DiscoverCtx(context.Background(), r, cfg)
	return fds, stats
}

// DiscoverCtx is DiscoverWithConfig with cooperative cancellation, checked
// between validation batches.
func DiscoverCtx(ctx context.Context, r *relation.Relation, cfg Config) ([]dep.FD, Stats, error) {
	fds, stats, _, err := discover(ctx, r, cfg)
	return fds, stats, err
}

// DiscoverRun runs DHyFD and emits the algorithm-agnostic run report. On
// cancellation the partial report (with Cancelled set) is returned
// alongside ctx's error.
func DiscoverRun(ctx context.Context, r *relation.Relation, cfg Config) ([]dep.FD, *engine.RunStats, error) {
	fds, _, rs, err := discover(ctx, r, cfg)
	return fds, rs, err
}

func discover(ctx context.Context, r *relation.Relation, cfg Config) (retFDs []dep.FD, retStats Stats, retRS *engine.RunStats, retErr error) {
	cfg.fillDefaults()
	var stats Stats
	rs := engine.NewRunStats("dhyfd", cfg.Workers)
	topkFlushed := false
	flushTopK := func() {
		if cfg.TopK == nil || topkFlushed {
			return
		}
		topkFlushed = true
		admitted, rejected, pruned := cfg.TopK.Counters()
		rs.Count("topk_admitted", admitted)
		rs.Count("topk_rejected", rejected)
		rs.Count("topk_pruned_branches", pruned)
	}
	defer func() {
		if rec := recover(); rec != nil {
			perr := engine.NewPanicError("dhyfd", rec)
			flushTopK()
			rs.Finish(perr)
			var partial []dep.FD
			if cfg.TopK != nil {
				// Heap entries were each individually validated: a sound
				// partial top-k even after a panic.
				partial = cfg.TopK.FDs()
				rs.FDs = int64(len(partial))
			}
			retFDs, retStats, retRS, retErr = partial, stats, rs, perr
		}
	}()
	n := r.NumCols()
	if n == 0 {
		rs.Finish(nil)
		return nil, stats, rs, nil
	}
	pool := engine.NewPoolRetry(cfg.Workers, engine.RetryPolicy{Max: cfg.Retries})

	if err := ctx.Err(); err != nil {
		rs.Finish(err)
		return nil, stats, rs, err
	}
	cache0 := cfg.Cache.Stats()
	defer func() {
		delta := cfg.Cache.Stats().Delta(cache0)
		rs.CacheHits += delta.Hits
		rs.CacheMisses += delta.Misses
		rs.CacheEvictions += delta.Evictions
	}()
	stop := rs.Phase("sample")
	m, built, err := newDDM(ctx, pool, r, &cfg)
	rs.PartitionsBuilt += int64(built)
	if err != nil {
		stop()
		pool.FoldRetryStats(rs)
		pool.FoldShardStats(rs)
		rs.Finish(err)
		return nil, stats, rs, err
	}
	if cfg.Budget.Exhausted() {
		rs.Degrade(cfg.Budget.Reason() + "; DDM refreshes disabled")
	}
	v := validate.New(r)
	v.MaxViolations = cfg.MaxViolations
	approx := cfg.MaxViolations > 0
	full := bitset.Full(n)

	var tree *fdtree.Tree
	var nonFDs *sampling.NonFDSet
	var numFDs int
	startLevel := 1
	if lf := resumeLevel(cfg.Resume); lf != nil {
		// Continue a checkpointed run: the restored tree and non-FD set are
		// the search state proper; sampling and root validation already
		// happened, so the run re-enters the level loop at the cursor. The
		// validator's exported counters and the Stats fields are assigned
		// from the snapshot — finish() reads them, so the resumed report is
		// cumulative.
		tree = cfg.Resume.Tree.Restore()
		nonFDs = cfg.Resume.NonFDs.Restore()
		if nonFDs == nil {
			nonFDs = sampling.NewNonFDSet(n)
		}
		cfg.Resume.Stats.Apply(rs)
		v.Validations = int(lf.Validations)
		v.Invalidated = int(lf.Invalidated)
		v.RowsScanned = int(lf.RowsScannedV)
		v.ClustersRefined = int(lf.ClustersRefined)
		stats.InitialNonFDs = int(lf.InitialNonFDs)
		stats.Comparisons = int(lf.Comparisons)
		stats.Levels = int(lf.Level) - 1
		stats.Refinements = int(lf.Refinements)
		stats.PeakDynPartRows = int(lf.PeakDynRows)
		stats.PeakDynPartCount = int(lf.PeakDynCount)
		rs.RowsScanned = lf.RowsScanned
		rs.PartitionsBuilt = lf.PartitionsBuilt
		numFDs = int(lf.NumFDs)
		startLevel = int(lf.Level)
		runstate.WarmCache(cfg.Cache, cfg.Resume.Manifest, r.Cols, r.Cards)
		stop()
	} else {
		tree = fdtree.NewWithFullRHS(n)
		tree.ControlledLevel = 1

		// One-shot sampling plus root validation (Algorithm 6, lines 5–6).
		// Approximate runs skip sampling entirely: one exact violating pair
		// would refute an FD the g3 bound still admits, so the tree may only
		// specialize from approximate validation outcomes.
		nonFDs = sampling.NewNonFDSet(n)
		rootWitness := nonFDs
		if approx {
			rootWitness = nil
		} else {
			for c := 0; c < n; c++ {
				_, comps, err := sampling.ClusterNeighborSampleSharded(ctx, pool, r, m.singles[c], 1, nonFDs, cfg.ShardSize)
				if err != nil {
					stop()
					pool.FoldRetryStats(rs)
					pool.FoldShardStats(rs)
					rs.Finish(err)
					return nil, stats, rs, err
				}
				stats.Comparisons += comps
			}
			rs.RowsScanned += 2 * int64(stats.Comparisons)
		}
		rootValid := v.EmptyLHS(full, rootWitness)
		stats.InitialNonFDs = nonFDs.Len()
		stop()
		stop = rs.Phase("induct")
		inductAll(tree, full, nonFDs.Sets())
		if approx {
			if invalid := full.Difference(rootValid); !invalid.IsEmpty() {
				tree.Induct(bitset.New(n), invalid)
			}
		}
		stop()
		if cfg.TopK != nil {
			rootScore := 0
			if r.NumRows() >= 2 {
				rootScore = r.NumRows()
			}
			for a := rootValid.Next(0); a >= 0; a = rootValid.Next(a + 1) {
				rhs := bitset.New(n)
				rhs.Add(a)
				cfg.TopK.Admit(dep.FD{LHS: bitset.New(n), RHS: rhs}, rootScore)
			}
		}

		// The surviving root RHS attributes are the validated FDs ∅ → A.
		numFDs = tree.Root().RHSCount()
	}
	processed := nonFDs.Len()

	// tick snapshots the boundary before validation level vl: levels below
	// it are fully validated and inducted into the tree, so a resumed run
	// re-enters the loop exactly at vl. Capturing clones the whole FD-tree,
	// so off-interval boundaries are skipped unless forced (terminal,
	// loop-top cancellation).
	tick := func(vl int, force bool) {
		if cfg.Checkpoint == nil || (!force && !cfg.Checkpoint.Due()) {
			return
		}
		f := &runstate.LevelFrontier{
			Version:         1,
			Level:           int64(vl),
			NumFDs:          int64(numFDs),
			Validations:     int64(v.Validations),
			Invalidated:     int64(v.Invalidated),
			RowsScannedV:    int64(v.RowsScanned),
			ClustersRefined: int64(v.ClustersRefined),
			InitialNonFDs:   int64(stats.InitialNonFDs),
			Comparisons:     int64(stats.Comparisons),
			Refinements:     int64(stats.Refinements),
			PeakDynRows:     int64(stats.PeakDynPartRows),
			PeakDynCount:    int64(stats.PeakDynPartCount),
			RowsScanned:     rs.RowsScanned,
			PartitionsBuilt: rs.PartitionsBuilt,
		}
		st := runstate.StatsSnapOf(rs)
		cd := cfg.Cache.Stats().Delta(cache0)
		st.CacheHits = rs.CacheHits + cd.Hits
		st.CacheMisses = rs.CacheMisses + cd.Misses
		st.CacheEvicts = rs.CacheEvictions + cd.Evictions
		_ = cfg.Checkpoint.Tick(&runstate.Snapshot{
			Stats:    st,
			Tree:     runstate.TreeSnapOf(tree),
			NonFDs:   runstate.NonFDSnapOf(nonFDs, n),
			TopK:     runstate.TopKSnapOf(cfg.TopK),
			Manifest: runstate.ManifestOf(cfg.Cache, manifestMax),
			Frontier: runstate.FrontierSnap{Version: 1, Level: f},
		})
	}

	finish := func(err error) ([]dep.FD, Stats, *engine.RunStats, error) {
		stats.Validations = v.Validations
		stats.Invalidated = v.Invalidated
		stats.NonFDs = nonFDs.Len()
		rs.CandidatesValidated = int64(v.Validations)
		rs.Invalidated = int64(v.Invalidated)
		rs.RowsScanned += int64(v.RowsScanned)
		rs.PartitionsRefined += int64(v.ClustersRefined)
		rs.NonFDs = int64(stats.NonFDs)
		rs.Levels = int64(stats.Levels)
		rs.Count("initial_non_fds", int64(stats.InitialNonFDs))
		rs.Count("sampling_comparisons", int64(stats.Comparisons))
		rs.Count("ddm_refreshes", int64(stats.Refinements))
		rs.Count("peak_dyn_partitions", int64(stats.PeakDynPartCount))
		rs.Count("peak_dyn_rows", int64(stats.PeakDynPartRows))
		flushTopK()
		pool.FoldRetryStats(rs)
		pool.FoldShardStats(rs)
		rs.Finish(err)
		if cfg.TopK != nil {
			// The heap's FDs were each individually validated and minimal
			// on the data, so this stands as a sound (partial, under err)
			// top-k in ranking order.
			fds := cfg.TopK.FDs()
			stats.FDs = len(fds)
			rs.FDs = int64(stats.FDs)
			return fds, stats, rs, err
		}
		return nil, stats, rs, err
	}

	for vl := startLevel; vl <= tree.MaxLevel(); vl++ {
		if err := ctx.Err(); err != nil {
			// Level vl is untouched, so this is still a boundary: park
			// it for the final Flush and Ctrl-C loses nothing.
			tick(vl, true)
			return finish(err)
		}
		tick(vl, false)
		candidates := tree.NodesAtLevel(vl)
		stats.Levels++

		total := 0
		for _, node := range candidates {
			total += node.RHSCount()
		}
		stop = rs.Phase("validate")
		invalids, err := validateLevel(ctx, pool, r, m, candidates, v, nonFDs, &cfg)
		stop()
		if err != nil {
			return finish(err)
		}
		stop = rs.Phase("induct")
		inductAll(tree, full, nonFDs.Sets()[processed:])
		// Approximate runs specialize from the validation outcomes instead
		// of witness pairs: lhs → a failing the g3 bound fails for every
		// generalization too (monotonicity), which is exactly Induct's
		// removal semantics.
		for _, li := range invalids {
			tree.Induct(li.lhs, li.invalid)
		}
		stop()
		processed = nonFDs.Len()

		numNewFDs := 0
		for _, node := range candidates {
			if node.Pruned {
				continue
			}
			numNewFDs += node.RHSCount()
		}
		numFDs += numNewFDs

		var reusables []*fdtree.Node
		for _, node := range candidates {
			if !node.Pruned && node.HasLiveChildren() {
				reusables = append(reusables, node)
			}
		}

		// Efficiency–inefficiency decision (Algorithm 6, lines 21–27).
		higher := tree.CountFDs() - numFDs
		if vl > 1 && total > 0 && len(reusables) > 0 && higher > 0 {
			if EfficiencyInefficiencyRatio(numNewFDs, total, len(reusables), higher) > cfg.Ratio {
				// Refreshing trades memory for time; once the budget is
				// exhausted the trade is off — validation continues from
				// the partitions already held, which stays sound.
				if cfg.Budget.Exhausted() {
					rs.Degrade(cfg.Budget.Reason() + "; DDM refreshes disabled")
					continue
				}
				tree.ControlledLevel = vl
				stop = rs.Phase("refine")
				err := m.update(ctx, pool, reusables)
				stop()
				if err != nil {
					return finish(err)
				}
				stats.Refinements++
				rs.PartitionsBuilt += int64(len(reusables))
				if rows := m.rows(); rows > stats.PeakDynPartRows {
					stats.PeakDynPartRows = rows
				}
				if len(m.slots) > stats.PeakDynPartCount {
					stats.PeakDynPartCount = len(m.slots)
				}
			}
		}
	}

	if err := ctx.Err(); err != nil {
		return finish(err)
	}
	// Terminal boundary: the cursor is past every tree level, so resuming a
	// post-completion snapshot replays no validation and re-emits the same
	// cover.
	tick(tree.MaxLevel()+1, true)
	if cfg.TopK != nil {
		return finish(nil) // the collector's FDs, in ranking order
	}
	fds := dep.SplitRHS(tree.FDs())
	dep.Sort(fds)
	stats.FDs = len(fds)
	_, _, _, _ = finish(nil)
	rs.FDs = int64(stats.FDs)
	return fds, stats, rs, nil
}

// resumeLevel extracts a snapshot's level frontier, nil when the run
// starts cold or the snapshot belongs to another algorithm family.
func resumeLevel(s *runstate.Snapshot) *runstate.LevelFrontier {
	if s == nil || s.Frontier.Level == nil || s.Tree == nil {
		return nil
	}
	return s.Frontier.Level
}

// EfficiencyInefficiencyRatio computes the paper's Section IV-G measure:
// efficiency — valid FDs over all FDs at the validation level — divided by
// inefficiency — reusable nodes over the FDs residing in higher levels.
// Example 5 of the paper: 1 valid of 1 FD with 2 reusable nodes over 5
// pending FDs gives (1/1)/(2/5) = 2.5; 1 of 2 with 2 reusables over 3
// pending gives (1/2)/(2/3) = 0.75.
func EfficiencyInefficiencyRatio(validFDs, totalFDs, reusableNodes, higherFDs int) float64 {
	efficiency := float64(validFDs) / float64(totalFDs)
	inefficiency := float64(reusableNodes) / float64(higherFDs)
	return efficiency / inefficiency
}

// levelInvalid records one approximate invalidation: every RHS attribute
// of invalid failed the g3 bound at lhs, refuting lhs → a and (by
// monotonicity) every generalization.
type levelInvalid struct {
	lhs     bitset.Set
	invalid bitset.Set
}

// validateNode validates one FD-node: the fused top-k bound check and
// possible skip, the validator call, heap admissions of validated FDs,
// and — on approximate runs — the invalid RHS set for post-level
// induction. Safe to run concurrently for distinct nodes (the collector
// is concurrent; the DDM is read-only during a level except for per-node
// id resets).
func validateNode(node *fdtree.Node, n int, m *ddm, v *validate.Validator, nonFDs *sampling.NonFDSet, cfg *Config) (levelInvalid, bool) {
	lhs := node.Path(n)
	if cfg.TopK != nil {
		// ‖π_lhs‖ — and the score of every FD specializing lhs — is at
		// most the smallest single-attribute partition size over lhs.
		bound := -1
		for a := lhs.Next(0); a >= 0; a = lhs.Next(a + 1) {
			if s := m.singles[a].Size(); bound < 0 || s < bound {
				bound = s
			}
		}
		if bound >= 0 && cfg.TopK.Prunable(bound) {
			node.Pruned = true
			return levelInvalid{}, false
		}
	}
	p, attrs := m.partitionFor(node, lhs)
	valid := v.FD(lhs, node.RHS, p, attrs, nonFDs)
	if cfg.TopK != nil && !valid.IsEmpty() {
		score := v.LastSize
		for a := valid.Next(0); a >= 0; a = valid.Next(a + 1) {
			rhs := bitset.New(n)
			rhs.Add(a)
			cfg.TopK.Admit(dep.FD{LHS: lhs, RHS: rhs}, score)
		}
	}
	if cfg.MaxViolations > 0 {
		if inv := node.RHS.Difference(valid); !inv.IsEmpty() {
			return levelInvalid{lhs: lhs, invalid: inv}, true
		}
	}
	return levelInvalid{}, false
}

// validateLevel validates the FD-nodes among candidates against their DDM
// partitions, collecting witness non-FDs (exact runs) or per-node invalid
// sets (approximate runs; returned in candidate order so induction stays
// deterministic for any worker count). With a pool wider than one the
// candidates fan out over engine.Pool workers: each worker owns a
// validator and a local non-FD buffer, merged into v and nonFDs after the
// level. The DDM is read-only during a level except for per-node id
// resets, which are safe because every node is processed by exactly one
// worker. Counters are merged even on cancellation so partial runs report
// honestly.
func validateLevel(ctx context.Context, pool *engine.Pool, r *relation.Relation, m *ddm, candidates []*fdtree.Node, v *validate.Validator, nonFDs *sampling.NonFDSet, cfg *Config) ([]levelInvalid, error) {
	n := r.NumCols()
	approx := cfg.MaxViolations > 0
	witness := nonFDs
	if approx {
		witness = nil
	}
	var invalids []levelInvalid
	workers := pool.Workers()
	if workers < 2 || len(candidates) < 4*workers {
		for i, node := range candidates {
			if i%64 == 0 {
				if err := ctx.Err(); err != nil {
					return invalids, err
				}
			}
			if !node.IsFDNode() {
				continue
			}
			if li, ok := validateNode(node, n, m, v, witness, cfg); ok {
				invalids = append(invalids, li)
			}
		}
		return invalids, nil
	}

	locals := make([]*sampling.NonFDSet, workers)
	validators := make([]*validate.Validator, workers)
	for w := 0; w < workers; w++ {
		locals[w] = sampling.NewNonFDSet(n)
		validators[w] = validate.New(r)
		validators[w].MaxViolations = cfg.MaxViolations
	}
	slots := make([]levelInvalid, len(candidates))
	found := make([]bool, len(candidates))
	err := pool.Run(ctx, len(candidates), func(w, i int) {
		node := candidates[i]
		if !node.IsFDNode() {
			return
		}
		local := locals[w]
		if approx {
			local = nil
		}
		slots[i], found[i] = validateNode(node, n, m, validators[w], local, cfg)
	})
	for w := 0; w < workers; w++ {
		v.Validations += validators[w].Validations
		v.Invalidated += validators[w].Invalidated
		v.RowsScanned += validators[w].RowsScanned
		v.ClustersRefined += validators[w].ClustersRefined
		for _, x := range locals[w].Sets() {
			nonFDs.Add(x)
		}
	}
	for i, ok := range found {
		if ok {
			invalids = append(invalids, slots[i])
		}
	}
	return invalids, err
}

// inductAll sorts agree sets descending by LHS size and inducts each
// (Algorithm 6, lines 7–8 and 19–20).
func inductAll(tree *fdtree.Tree, full bitset.Set, sets []bitset.Set) {
	sorted := append([]bitset.Set(nil), sets...)
	sampling.SortSetsDescending(sorted)
	for _, x := range sorted {
		tree.Induct(x, full.Difference(x))
	}
}
