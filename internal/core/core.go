// Package core implements DHyFD, the dynamic hybrid FD discovery algorithm
// that is the paper's primary contribution (Section IV).
//
// DHyFD follows the column-based approach over an extended FD-tree but
// uses a dynamic data manager (DDM) as a row-based technique whenever many
// FDs are likely to be valid. The DDM maintains an array of stripped
// partitions rooted at the current controlled level of the tree; node ids
// index that array, so validating the FDs of deeper levels refines an
// already-computed partition instead of starting from single-attribute
// partitions every time (HyFD's behaviour).
//
// The decision to spend memory on refreshed partitions is taken per
// validation level by the efficiency–inefficiency ratio: efficiency is the
// fraction of the level's FDs that turned out valid; inefficiency is the
// fraction of reusable nodes (validated nodes with live children) over the
// FDs still waiting at higher levels. A high ratio means validated
// partitions will be shared by many descendants, so refinement pays off
// (Section IV-G; the experiments of Figure 6 fix the threshold at 3).
//
// Sampling happens exactly once, before the main loop (sorted-neighborhood
// pair selection over the single-attribute partitions), and every FD
// validation doubles as further sampling: witness pairs of invalid FDs
// are genuine non-FDs fed back into synergized induction.
package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/dep"
	"repro/internal/fdtree"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/sampling"
	"repro/internal/validate"
)

// Config tunes DHyFD.
type Config struct {
	// Ratio is the efficiency–inefficiency threshold above which the DDM
	// refreshes its partitions (Algorithm 6, line 26). The paper tunes it
	// to 3.0 (Figure 6). Set it very large to disable refreshes entirely,
	// which degenerates DHyFD into a validate-from-singletons hybrid.
	Ratio float64
	// Workers sets the number of goroutines validating a level's
	// candidates concurrently — an extension beyond the paper's
	// single-threaded implementation. Validation of distinct FD-nodes is
	// independent (the DDM is read-only during a level), so levels
	// parallelize cleanly; induction remains sequential. Values below 2
	// keep the paper's serial behaviour.
	Workers int
}

// DefaultConfig returns the paper's tuned configuration.
func DefaultConfig() Config { return Config{Ratio: 3.0} }

func (c *Config) fillDefaults() {
	if c.Ratio == 0 {
		c.Ratio = 3.0
	}
}

// Stats reports what a run did.
type Stats struct {
	InitialNonFDs    int // distinct agree sets from the one-shot sampling
	Comparisons      int // tuple pairs compared by the one-shot sampling
	NonFDs           int // total distinct agree sets (sampling + validation)
	Validations      int // (node, RHS attr) validations
	Invalidated      int // validations that failed
	Levels           int // validation levels processed
	Refinements      int // DDM refreshes (controlled-level advances)
	PeakDynPartRows  int // max Σ‖π‖ held by the DDM at once (memory proxy)
	PeakDynPartCount int // max number of dynamic partitions held at once
	FDs              int // FDs in the output cover
}

// ddm is the dynamic data manager: pre-computed single-attribute stripped
// partitions plus one array of dynamic partitions per controlled-level
// epoch. Node ids below NumCols index singles; ids >= NumCols index the
// dynamic array, valid only while the node's epoch matches (stale ids are
// the paper's "inconsistent" ids and fall back to singles).
type ddm struct {
	r       *relation.Relation
	singles []*partition.Partition
	epoch   int
	slots   []dynPartition
	rf      *partition.Refiner
}

type dynPartition struct {
	part  *partition.Partition
	attrs bitset.Set
}

func newDDM(r *relation.Relation) *ddm {
	n := r.NumCols()
	maxCard := 1
	for _, c := range r.Cards {
		if c > maxCard {
			maxCard = c
		}
	}
	m := &ddm{
		r:       r,
		singles: make([]*partition.Partition, n),
		epoch:   1,
		rf:      partition.NewRefiner(maxCard),
	}
	for c := 0; c < n; c++ {
		m.singles[c] = partition.Single(r.Cols[c], r.Cards[c])
	}
	return m
}

// partitionFor returns a stripped partition π_X′ with X′ ⊆ lhs for the
// node, preferring the node's dynamic partition when its id is consistent.
// Nodes with default or stale ids get the cheapest single-attribute
// partition of their path (Algorithm 6, lines 15–16) and their id is reset
// accordingly.
func (m *ddm) partitionFor(node *fdtree.Node, lhs bitset.Set) (*partition.Partition, bitset.Set) {
	n := len(m.singles)
	if node.ID >= n && node.Epoch == m.epoch {
		slot := m.slots[node.ID-n]
		if slot.attrs.IsSubsetOf(lhs) {
			return slot.part, slot.attrs
		}
	}
	best, bestSize := -1, -1
	for a := lhs.Next(0); a >= 0; a = lhs.Next(a + 1) {
		if size := m.singles[a].Size(); best < 0 || size < bestSize {
			best, bestSize = a, size
		}
	}
	node.ID, node.Epoch = best, 0
	attrs := bitset.New(n)
	attrs.Add(best)
	return m.singles[best], attrs
}

// update implements Algorithm 3: a new dynamic array is built from the
// reusable nodes at the new controlled level. Each node's partition starts
// from its consistent dynamic partition (or its own singleton) and is
// refined by the missing path attributes; the node receives the new slot id
// and propagates it to its descendants.
func (m *ddm) update(reusables []*fdtree.Node) {
	n := len(m.singles)
	oldEpoch := m.epoch
	oldSlots := m.slots
	m.epoch++
	newSlots := make([]dynPartition, 0, len(reusables))
	for _, node := range reusables {
		lhs := node.Path(n)
		var p *partition.Partition
		var attrs bitset.Set
		if node.ID >= n && node.Epoch == oldEpoch {
			slot := oldSlots[node.ID-n]
			if slot.attrs.IsSubsetOf(lhs) {
				p, attrs = slot.part, slot.attrs
			}
		}
		if p == nil {
			a := node.Attr
			p, attrs = m.singles[a], bitset.FromAttrs(n, a)
		}
		for b := lhs.Next(0); b >= 0; b = lhs.Next(b + 1) {
			if attrs.Contains(b) {
				continue
			}
			p = m.rf.Refine(p, m.r.Cols[b], m.r.Cards[b])
		}
		node.ID = n + len(newSlots)
		node.Epoch = m.epoch
		newSlots = append(newSlots, dynPartition{part: p, attrs: lhs})
		fdtree.PropagateID(node)
	}
	m.slots = newSlots
}

// rows returns Σ‖π‖ over the dynamic array, the memory proxy of Figure 7.
func (m *ddm) rows() int {
	total := 0
	for _, s := range m.slots {
		total += s.part.Size()
	}
	return total
}

// Discover returns the left-reduced cover of the FDs holding on r.
func Discover(r *relation.Relation) []dep.FD {
	fds, _ := DiscoverWithConfig(r, DefaultConfig())
	return fds
}

// DiscoverWithConfig runs DHyFD with explicit tuning and returns run
// statistics alongside the cover.
func DiscoverWithConfig(r *relation.Relation, cfg Config) ([]dep.FD, Stats) {
	fds, stats, _ := DiscoverCtx(context.Background(), r, cfg)
	return fds, stats
}

// DiscoverCtx is DiscoverWithConfig with cooperative cancellation, checked
// between validations.
func DiscoverCtx(ctx context.Context, r *relation.Relation, cfg Config) ([]dep.FD, Stats, error) {
	cfg.fillDefaults()
	var stats Stats
	n := r.NumCols()
	if n == 0 {
		return nil, stats, nil
	}

	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	m := newDDM(r)
	v := validate.New(r)
	tree := fdtree.NewWithFullRHS(n)
	tree.ControlledLevel = 1
	full := bitset.Full(n)

	// One-shot sampling plus root validation (Algorithm 6, lines 5–6).
	nonFDs := sampling.NewNonFDSet(n)
	for c := 0; c < n; c++ {
		_, comps := sampling.ClusterNeighborSample(r, m.singles[c], 1, nonFDs)
		stats.Comparisons += comps
	}
	v.EmptyLHS(full, nonFDs)
	stats.InitialNonFDs = nonFDs.Len()
	inductAll(tree, full, nonFDs.Sets())
	processed := nonFDs.Len()

	// The surviving root RHS attributes are the validated FDs ∅ → A.
	numFDs := tree.Root().RHSCount()

	for vl := 1; vl <= tree.MaxLevel(); vl++ {
		candidates := tree.NodesAtLevel(vl)
		stats.Levels++

		total := 0
		for _, node := range candidates {
			total += node.RHSCount()
		}
		if err := validateLevel(ctx, cfg.Workers, r, m, candidates, v, nonFDs); err != nil {
			return nil, stats, err
		}
		inductAll(tree, full, nonFDs.Sets()[processed:])
		processed = nonFDs.Len()

		numNewFDs := 0
		for _, node := range candidates {
			numNewFDs += node.RHSCount()
		}
		numFDs += numNewFDs

		var reusables []*fdtree.Node
		for _, node := range candidates {
			if node.HasLiveChildren() {
				reusables = append(reusables, node)
			}
		}

		// Efficiency–inefficiency decision (Algorithm 6, lines 21–27).
		higher := tree.CountFDs() - numFDs
		if vl > 1 && total > 0 && len(reusables) > 0 && higher > 0 {
			if EfficiencyInefficiencyRatio(numNewFDs, total, len(reusables), higher) > cfg.Ratio {
				tree.ControlledLevel = vl
				m.update(reusables)
				stats.Refinements++
				if rows := m.rows(); rows > stats.PeakDynPartRows {
					stats.PeakDynPartRows = rows
				}
				if len(m.slots) > stats.PeakDynPartCount {
					stats.PeakDynPartCount = len(m.slots)
				}
			}
		}
	}

	stats.Validations = v.Validations
	stats.Invalidated = v.Invalidated
	stats.NonFDs = nonFDs.Len()

	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	fds := dep.SplitRHS(tree.FDs())
	dep.Sort(fds)
	stats.FDs = len(fds)
	return fds, stats, nil
}

// EfficiencyInefficiencyRatio computes the paper's Section IV-G measure:
// efficiency — valid FDs over all FDs at the validation level — divided by
// inefficiency — reusable nodes over the FDs residing in higher levels.
// Example 5 of the paper: 1 valid of 1 FD with 2 reusable nodes over 5
// pending FDs gives (1/1)/(2/5) = 2.5; 1 of 2 with 2 reusables over 3
// pending gives (1/2)/(2/3) = 0.75.
func EfficiencyInefficiencyRatio(validFDs, totalFDs, reusableNodes, higherFDs int) float64 {
	efficiency := float64(validFDs) / float64(totalFDs)
	inefficiency := float64(reusableNodes) / float64(higherFDs)
	return efficiency / inefficiency
}

// validateLevel validates the FD-nodes among candidates against their DDM
// partitions, collecting witness non-FDs. With workers > 1 the candidates
// are validated concurrently: each worker owns a validator and a local
// non-FD buffer, and nodes are handed out by an atomic cursor. The DDM is
// read-only during a level except for per-node id resets, which are safe
// because every node is processed by exactly one worker.
func validateLevel(ctx context.Context, workers int, r *relation.Relation, m *ddm, candidates []*fdtree.Node, v *validate.Validator, nonFDs *sampling.NonFDSet) error {
	n := r.NumCols()
	if workers < 2 || len(candidates) < 4*workers {
		for i, node := range candidates {
			if i%64 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if !node.IsFDNode() {
				continue
			}
			lhs := node.Path(n)
			p, attrs := m.partitionFor(node, lhs)
			v.FD(lhs, node.RHS, p, attrs, nonFDs)
		}
		return nil
	}

	locals := make([]*sampling.NonFDSet, workers)
	validators := make([]*validate.Validator, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		locals[w] = sampling.NewNonFDSet(n)
		validators[w] = validate.New(r)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(candidates) {
					return
				}
				if i%64 == 0 && ctx.Err() != nil {
					return
				}
				node := candidates[i]
				if !node.IsFDNode() {
					continue
				}
				lhs := node.Path(n)
				p, attrs := m.partitionFor(node, lhs)
				validators[w].FD(lhs, node.RHS, p, attrs, locals[w])
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for w := 0; w < workers; w++ {
		v.Validations += validators[w].Validations
		v.Invalidated += validators[w].Invalidated
		for _, x := range locals[w].Sets() {
			nonFDs.Add(x)
		}
	}
	return nil
}

// inductAll sorts agree sets descending by LHS size and inducts each
// (Algorithm 6, lines 7–8 and 19–20).
func inductAll(tree *fdtree.Tree, full bitset.Set, sets []bitset.Set) {
	sorted := append([]bitset.Set(nil), sets...)
	sampling.SortSetsDescending(sorted)
	for _, x := range sorted {
		tree.Induct(x, full.Difference(x))
	}
}
