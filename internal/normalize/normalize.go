// Package normalize turns discovered FD covers into schema designs — the
// application the paper's redundancy measure is motivated by (Section I:
// FDs are the major source of data redundancy, which brought forward the
// Boyce-Codd and Third Normal Form proposals).
//
// The package provides candidate-key enumeration (Lucchesi–Osborn), the
// classic 3NF synthesis from a canonical cover, and BCNF decomposition,
// together with the lossless-join and dependency-preservation checks that
// validate a design.
package normalize

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/cover"
	"repro/internal/dep"
)

// CandidateKeys enumerates every minimal key of a schema with numAttrs
// attributes under the given FDs, using the Lucchesi–Osborn algorithm:
// starting from one reduced key, each (key, FD) pair spawns the candidate
// X ∪ (K − Y), which is reduced and kept if no known key is contained in
// it. The number of minimal keys can be exponential; maxKeys bounds the
// enumeration (0 means unbounded).
func CandidateKeys(numAttrs int, fds []dep.FD, maxKeys int) []bitset.Set {
	e := cover.NewEngine(numAttrs, fds)
	full := bitset.Full(numAttrs)

	reduce := func(x bitset.Set) bitset.Set {
		k := x.Clone()
		for a := k.Next(0); a >= 0; a = k.Next(a + 1) {
			k.Remove(a)
			if !full.IsSubsetOf(e.Closure(k, -1)) {
				k.Add(a)
			}
		}
		return k
	}

	keys := []bitset.Set{reduce(full)}
	for i := 0; i < len(keys); i++ {
		if maxKeys > 0 && len(keys) >= maxKeys {
			break
		}
		k := keys[i]
		for _, f := range fds {
			// Candidate S = X ∪ (K − Y).
			s := k.Difference(f.RHS)
			s.UnionWith(f.LHS)
			dominated := false
			for _, known := range keys {
				if known.IsSubsetOf(s) {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			keys = append(keys, reduce(s))
			if maxKeys > 0 && len(keys) >= maxKeys {
				break
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if ci, cj := keys[i].Count(), keys[j].Count(); ci != cj {
			return ci < cj
		}
		return bitset.CompareLex(keys[i], keys[j]) < 0
	})
	return keys
}

// IsSuperkey reports whether x determines every attribute under fds.
func IsSuperkey(numAttrs int, fds []dep.FD, x bitset.Set) bool {
	return bitset.Full(numAttrs).IsSubsetOf(cover.Closure(numAttrs, fds, x))
}

// Relation is one relation schema of a decomposition.
type Relation struct {
	// Attrs is the attribute set of the schema.
	Attrs bitset.Set
	// Key is a key of the schema (the LHS that generated it, for synthesis
	// results; a containing key for BCNF fragments).
	Key bitset.Set
}

// Synthesize3NF runs the classic 3NF synthesis: one schema per
// canonical-cover FD (LHS ∪ RHS, merging schemas contained in others),
// plus a key schema when no synthesized schema contains a candidate key.
// The result is lossless and dependency-preserving.
func Synthesize3NF(numAttrs int, fds []dep.FD) []Relation {
	can := cover.Canonical(numAttrs, fds)
	var out []Relation
	for _, f := range can {
		attrs := f.LHS.Union(f.RHS)
		out = append(out, Relation{Attrs: attrs, Key: f.LHS.Clone()})
	}
	// Drop schemas contained in another.
	out = dropContained(out)

	// Ensure some schema contains a key of R.
	keys := CandidateKeys(numAttrs, can, 64)
	hasKey := false
outer:
	for _, rel := range out {
		for _, k := range keys {
			if k.IsSubsetOf(rel.Attrs) {
				hasKey = true
				break outer
			}
		}
	}
	if !hasKey {
		k := bitset.Full(numAttrs)
		if len(keys) > 0 {
			k = keys[0]
		}
		out = append(out, Relation{Attrs: k.Clone(), Key: k.Clone()})
	}
	return out
}

func dropContained(rels []Relation) []Relation {
	var out []Relation
	for i, r := range rels {
		contained := false
		for j, s := range rels {
			if i == j {
				continue
			}
			if r.Attrs.IsSubsetOf(s.Attrs) && (!s.Attrs.IsSubsetOf(r.Attrs) || j < i) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, r)
		}
	}
	return out
}

// DecomposeBCNF splits the schema until no projected FD violates BCNF.
// Each step picks the violating FD causing the largest RHS and splits
// R into (X ∪ Y) and (R − Y). The result is lossless; dependency
// preservation is not guaranteed (it cannot be, in general).
// maxDepth bounds the recursion as a safety net.
func DecomposeBCNF(numAttrs int, fds []dep.FD, maxDepth int) []Relation {
	if maxDepth <= 0 {
		maxDepth = 4 * numAttrs
	}
	var out []Relation
	var split func(attrs bitset.Set, depth int)
	split = func(attrs bitset.Set, depth int) {
		viol, ok := findBCNFViolation(numAttrs, fds, attrs)
		if !ok || depth >= maxDepth {
			out = append(out, Relation{Attrs: attrs, Key: keyWithin(numAttrs, fds, attrs)})
			return
		}
		// R1 = X ∪ Y, R2 = attrs − Y.
		r1 := viol.LHS.Union(viol.RHS)
		r2 := attrs.Difference(viol.RHS)
		r2.UnionWith(viol.LHS)
		split(r1, depth+1)
		split(r2, depth+1)
	}
	split(bitset.Full(numAttrs), 0)
	return dropContained(out)
}

// findBCNFViolation looks for an FD X → Y projected onto attrs where X is
// not a superkey of attrs; Y is maximized to closure(X) ∩ attrs − X.
func findBCNFViolation(numAttrs int, fds []dep.FD, attrs bitset.Set) (dep.FD, bool) {
	e := cover.NewEngine(numAttrs, fds)
	var best dep.FD
	bestSize := 0
	for _, f := range fds {
		if !f.LHS.IsSubsetOf(attrs) {
			continue
		}
		closure := e.Closure(f.LHS, -1)
		rhs := closure.Intersect(attrs)
		rhs.DifferenceWith(f.LHS)
		if rhs.IsEmpty() {
			continue
		}
		if attrs.IsSubsetOf(closure) {
			continue // X is a superkey of this fragment: no violation
		}
		if size := rhs.Count(); size > bestSize {
			bestSize = size
			best = dep.FD{LHS: f.LHS.Clone(), RHS: rhs}
		}
	}
	return best, bestSize > 0
}

// keyWithin returns a minimal subset of attrs determining all of attrs.
func keyWithin(numAttrs int, fds []dep.FD, attrs bitset.Set) bitset.Set {
	e := cover.NewEngine(numAttrs, fds)
	k := attrs.Clone()
	for a := k.Next(0); a >= 0; a = k.Next(a + 1) {
		k.Remove(a)
		if !attrs.IsSubsetOf(e.Closure(k, -1)) {
			k.Add(a)
		}
	}
	return k
}

// Lossless reports whether a two-way split (r1, r2) of the full schema is
// a lossless join under fds: r1 ∩ r2 must determine r1 or r2.
func Lossless(numAttrs int, fds []dep.FD, r1, r2 bitset.Set) bool {
	shared := r1.Intersect(r2)
	closure := cover.Closure(numAttrs, fds, shared)
	return r1.IsSubsetOf(closure) || r2.IsSubsetOf(closure)
}

// LosslessAll checks an n-way decomposition with the chase-free sufficient
// test: fold the fragments pairwise, requiring each join step lossless.
// It accepts exactly the decompositions produced by DecomposeBCNF and
// Synthesize3NF (binary split trees and synthesis with a key schema).
func LosslessAll(numAttrs int, fds []dep.FD, rels []Relation) bool {
	if len(rels) == 0 {
		return false
	}
	// Greedy folding: start from any fragment, repeatedly join a fragment
	// whose intersection determines one side.
	acc := rels[0].Attrs.Clone()
	remaining := make([]Relation, len(rels)-1)
	copy(remaining, rels[1:])
	for len(remaining) > 0 {
		progress := false
		for i, r := range remaining {
			if Lossless(numAttrs, fds, acc, r.Attrs) {
				acc.UnionWith(r.Attrs)
				remaining = append(remaining[:i], remaining[i+1:]...)
				progress = true
				break
			}
		}
		if !progress {
			return false
		}
	}
	return acc.Equal(bitset.Full(numAttrs))
}

// Preserved reports whether every FD of fds is implied by the union of the
// projections of fds onto the decomposition's fragments (dependency
// preservation). Projection uses the closure-based definition.
func Preserved(numAttrs int, fds []dep.FD, rels []Relation) bool {
	var projected []dep.FD
	for _, rel := range rels {
		projected = append(projected, ProjectFDs(numAttrs, fds, rel.Attrs)...)
	}
	e := cover.NewEngine(numAttrs, projected)
	for _, f := range fds {
		if !e.Implies(f.LHS, f.RHS, -1) {
			return false
		}
	}
	return true
}

// ProjectFDs computes a cover of the FDs that hold on the projection of
// the schema onto attrs: for every subset X of attrs appearing as an LHS
// basis, X → closure(X) ∩ attrs. To stay polynomial it uses the LHSs of
// fds (restricted to attrs) plus their closures rather than all subsets,
// which yields a cover for the projections produced by normalization
// (whose fragments contain the relevant LHSs).
func ProjectFDs(numAttrs int, fds []dep.FD, attrs bitset.Set) []dep.FD {
	e := cover.NewEngine(numAttrs, fds)
	var out []dep.FD
	seen := map[string]bool{}
	for _, f := range fds {
		if !f.LHS.IsSubsetOf(attrs) {
			continue
		}
		k := f.LHS.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		rhs := e.Closure(f.LHS, -1)
		rhs.IntersectWith(attrs)
		rhs.DifferenceWith(f.LHS)
		if !rhs.IsEmpty() {
			out = append(out, dep.FD{LHS: f.LHS.Clone(), RHS: rhs})
		}
	}
	return out
}
