package normalize

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dataset"
	"repro/internal/dep"
)

func fd(n int, lhs []int, rhs ...int) dep.FD {
	return dep.FD{LHS: bitset.FromAttrs(n, lhs...), RHS: bitset.FromAttrs(n, rhs...)}
}

// Textbook schema: R(A,B,C,D) with A→B, B→C. Keys: {A,D}.
func TestCandidateKeysTextbook(t *testing.T) {
	fds := []dep.FD{fd(4, []int{0}, 1), fd(4, []int{1}, 2)}
	keys := CandidateKeys(4, fds, 0)
	if len(keys) != 1 || !keys[0].Equal(bitset.FromAttrs(4, 0, 3)) {
		t.Fatalf("keys = %v, want [{0,3}]", keys)
	}
}

// R(A,B,C) with A→B, B→C, C→A: every single attribute is a key.
func TestCandidateKeysCycle(t *testing.T) {
	fds := []dep.FD{
		fd(3, []int{0}, 1), fd(3, []int{1}, 2), fd(3, []int{2}, 0),
	}
	keys := CandidateKeys(3, fds, 0)
	if len(keys) != 3 {
		t.Fatalf("keys = %v, want 3 singleton keys", keys)
	}
	for _, k := range keys {
		if k.Count() != 1 {
			t.Errorf("non-minimal key %v", k)
		}
	}
}

func TestCandidateKeysBound(t *testing.T) {
	// 2n attributes with Ai ↔ Bi yields 2^n keys; the bound must hold.
	const n = 5
	var fds []dep.FD
	for i := 0; i < n; i++ {
		fds = append(fds, fd(2*n, []int{2 * i}, 2*i+1), fd(2*n, []int{2*i + 1}, 2*i))
	}
	keys := CandidateKeys(2*n, fds, 8)
	if len(keys) > 8 {
		t.Errorf("bound exceeded: %d keys", len(keys))
	}
	for _, k := range keys {
		if !IsSuperkey(2*n, fds, k) {
			t.Errorf("%v is not a key", k)
		}
	}
}

func TestCandidateKeysMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(4)
		var fds []dep.FD
		for i := 0; i < 2+rng.Intn(5); i++ {
			lhs := bitset.New(n)
			for a := 0; a < n; a++ {
				if rng.Intn(3) == 0 {
					lhs.Add(a)
				}
			}
			rhs := bitset.New(n)
			rhs.Add(rng.Intn(n))
			rhs.DifferenceWith(lhs)
			if rhs.IsEmpty() {
				continue
			}
			fds = append(fds, dep.FD{LHS: lhs, RHS: rhs})
		}
		keys := CandidateKeys(n, fds, 0)
		if len(keys) == 0 {
			t.Fatalf("trial %d: no keys", trial)
		}
		for _, k := range keys {
			if !IsSuperkey(n, fds, k) {
				t.Fatalf("trial %d: %v not superkey", trial, k)
			}
			// Minimal: removing any attribute breaks it.
			for a := k.Next(0); a >= 0; a = k.Next(a + 1) {
				sub := k.Clone()
				sub.Remove(a)
				if IsSuperkey(n, fds, sub) {
					t.Fatalf("trial %d: key %v not minimal", trial, k)
				}
			}
		}
		// Pairwise incomparable.
		for i := range keys {
			for j := range keys {
				if i != j && keys[i].IsSubsetOf(keys[j]) {
					t.Fatalf("trial %d: key %v ⊆ key %v", trial, keys[i], keys[j])
				}
			}
		}
	}
}

// Classic example: R(city, street, zip) with {city,street}→zip, zip→city.
// 3NF keeps both FDs; BCNF must split and lose one.
func TestZipCodeSchema(t *testing.T) {
	const (
		city = iota
		street
		zip
	)
	fds := []dep.FD{
		fd(3, []int{city, street}, zip),
		fd(3, []int{zip}, city),
	}

	keys := CandidateKeys(3, fds, 0)
	// Keys: {city,street} and {street,zip}.
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}

	three := Synthesize3NF(3, fds)
	if !LosslessAll(3, fds, three) {
		t.Error("3NF not lossless")
	}
	if !Preserved(3, fds, three) {
		t.Error("3NF must preserve dependencies")
	}

	bcnf := DecomposeBCNF(3, fds, 0)
	if !LosslessAll(3, fds, bcnf) {
		t.Error("BCNF not lossless")
	}
	// Every fragment must satisfy BCNF: no projected FD with non-superkey LHS.
	for _, rel := range bcnf {
		if _, violated := findBCNFViolation(3, fds, rel.Attrs); violated {
			t.Errorf("fragment %v still violates BCNF", rel.Attrs)
		}
	}
	// The textbook fact: this schema has no dependency-preserving BCNF
	// decomposition.
	if Preserved(3, fds, bcnf) {
		t.Error("zip schema famously cannot preserve {city,street}→zip in BCNF")
	}
}

func TestSynthesize3NFSimple(t *testing.T) {
	// A→B, B→C: 3NF = (A,B), (B,C); both contain keys of themselves and
	// (A,B) contains the key... the global key {A} ⊆ (A,B) — wait the key
	// of R(A,B,C) is {A}; schema (A,B) contains it.
	fds := []dep.FD{fd(3, []int{0}, 1), fd(3, []int{1}, 2)}
	rels := Synthesize3NF(3, fds)
	if len(rels) != 2 {
		t.Fatalf("rels = %v", rels)
	}
	if !LosslessAll(3, fds, rels) || !Preserved(3, fds, rels) {
		t.Error("3NF properties violated")
	}
}

func TestLossless(t *testing.T) {
	fds := []dep.FD{fd(3, []int{0}, 1)}
	// Split on A→B: (A,B) and (A,C): shared {A} determines (A,B). ✓
	if !Lossless(3, fds, bitset.FromAttrs(3, 0, 1), bitset.FromAttrs(3, 0, 2)) {
		t.Error("valid split rejected")
	}
	// Split (A,B) and (C): shared ∅ determines nothing.
	if Lossless(3, fds, bitset.FromAttrs(3, 0, 1), bitset.FromAttrs(3, 2)) {
		t.Error("lossy split accepted")
	}
}

// TestOnDiscoveredCover: normalization works end-to-end from discovery.
func TestOnDiscoveredCover(t *testing.T) {
	b, _ := dataset.ByName("ncvoter")
	r := b.Generate(300, 10)
	n := r.NumCols()
	can := cover.Canonical(n, core.Discover(r))

	keys := CandidateKeys(n, can, 32)
	if len(keys) == 0 {
		t.Fatal("no candidate keys")
	}

	bcnf := DecomposeBCNF(n, can, 0)
	if !LosslessAll(n, can, bcnf) {
		t.Error("BCNF decomposition lossy")
	}
	for _, rel := range bcnf {
		if rel.Attrs.IsEmpty() {
			t.Error("empty fragment")
		}
		if !rel.Key.IsSubsetOf(rel.Attrs) {
			t.Error("fragment key outside fragment")
		}
	}

	three := Synthesize3NF(n, can)
	if !LosslessAll(n, can, three) {
		t.Error("3NF decomposition lossy")
	}
	if !Preserved(n, can, three) {
		t.Error("3NF must preserve dependencies")
	}
}
