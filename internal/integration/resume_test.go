package integration

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	dhyfd "repro"
	"repro/internal/dataset"
	"repro/internal/dep"
	"repro/internal/faults"
	"repro/internal/runstate"
)

// durableAlgorithms are the algorithms supporting checkpoint/resume.
var durableAlgorithms = []dhyfd.Algorithm{
	dhyfd.DHyFD, dhyfd.HyFD, dhyfd.TANE, dhyfd.DFD, dhyfd.FastFDs,
}

// tick is the shortest positive checkpoint interval: every driver
// boundary writes a snapshot, so an interrupt anywhere resumes from the
// closest boundary before it.
const tick = time.Nanosecond

// TestResumeEquivalenceMatrix is the kill-and-resume contract: for every
// durable algorithm and every fault site, a run checkpointing at each
// boundary is killed by an injected failure, then resumed — and the
// resumed run must emit a cover identical (same FDs, same order) to an
// uninterrupted run. Faults that fire before the first boundary leave no
// snapshot; the resume is then a documented cold start and must still
// match.
func TestResumeEquivalenceMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := dataset.Random(rng, 300, 7, 4)
	ctx := context.Background()

	baseline := map[dhyfd.Algorithm][]dep.FD{}
	for _, a := range durableAlgorithms {
		res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2))
		if err != nil {
			t.Fatalf("fault-free %v run failed: %v", a, err)
		}
		baseline[a] = res.FDs
	}

	for _, a := range durableAlgorithms {
		for _, site := range faults.Sites() {
			for _, n := range []int{1, 4} {
				name := fmt.Sprintf("%v/%s@%d", a, site, n)
				t.Run(name, func(t *testing.T) {
					defer faults.Reset()
					dir := t.TempDir()
					faults.Arm(site, faults.Plan{Kind: faults.KindPanic, N: n})
					_, err := dhyfd.Discover(ctx, r,
						dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2),
						dhyfd.WithCheckpoint(dir, tick))
					fired := !faults.Armed(site)
					faults.Reset()
					if !fired {
						if err != nil {
							t.Fatalf("error %v without the fault firing", err)
						}
						// The site is off this algorithm's path; the
						// completed run still resumes below (terminal
						// snapshot, no work to replay).
					}
					// Whether the interrupted run reached a boundary decides
					// if the second leg genuinely resumes or cold-starts.
					_, lerr := runstate.Load(dir)
					hadSnap := lerr == nil
					res, err := dhyfd.Discover(ctx, r,
						dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2),
						dhyfd.WithCheckpoint(dir, tick), dhyfd.WithResume(dir))
					if err != nil {
						t.Fatalf("resume failed: %v", err)
					}
					if !reflect.DeepEqual(res.FDs, baseline[a]) {
						only, other := dep.Diff(res.FDs, baseline[a], r.Names)
						t.Fatalf("resumed cover differs from uninterrupted run.\nonly resumed: %v\nonly baseline: %v", only, other)
					}
					if hadSnap && res.Stats.Counters["resumed"] == 0 {
						t.Error("snapshot present but run did not report resuming")
					}
				})
			}
		}
	}
}

// TestResumeAfterDeadline interrupts runs with wall-clock deadlines —
// landing between boundaries rather than on a fault site — and asserts
// the same equivalence. Runs that finish before the deadline resume from
// their terminal snapshot, which must also be byte-identical.
func TestResumeAfterDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := dataset.Random(rng, 500, 8, 5)
	ctx := context.Background()

	for _, a := range durableAlgorithms {
		base, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2))
		if err != nil {
			t.Fatalf("fault-free %v run failed: %v", a, err)
		}
		for _, budget := range []time.Duration{2 * time.Millisecond, 20 * time.Millisecond} {
			t.Run(fmt.Sprintf("%v/%v", a, budget), func(t *testing.T) {
				dir := t.TempDir()
				_, err := dhyfd.Discover(ctx, r,
					dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2),
					dhyfd.WithCheckpoint(dir, tick),
					dhyfd.WithDeadline(time.Now().Add(budget)))
				if err != nil && !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("interrupted run: %v", err)
				}
				res, rerr := dhyfd.Discover(ctx, r,
					dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2),
					dhyfd.WithCheckpoint(dir, tick), dhyfd.WithResume(dir))
				if rerr != nil {
					t.Fatalf("resume failed: %v", rerr)
				}
				if !reflect.DeepEqual(res.FDs, base.FDs) {
					only, other := dep.Diff(res.FDs, base.FDs, r.Names)
					t.Fatalf("resumed cover differs.\nonly resumed: %v\nonly baseline: %v", only, other)
				}
			})
		}
	}
}

// TestResumeTopKEquivalence repeats the interrupt-resume check under the
// fused top-k search: the restored heap must carry the interrupted run's
// admissions so the resumed ranking matches an uninterrupted one.
func TestResumeTopKEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := dataset.Random(rng, 300, 7, 4)
	ctx := context.Background()
	const k = 5

	for _, a := range []dhyfd.Algorithm{dhyfd.DHyFD, dhyfd.TANE, dhyfd.DFD} {
		t.Run(a.String(), func(t *testing.T) {
			base, err := dhyfd.Discover(ctx, r,
				dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2), dhyfd.WithTopK(k))
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			defer faults.Reset()
			dir := t.TempDir()
			faults.Arm(faults.TopKPrune, faults.Plan{Kind: faults.KindPanic, N: 3})
			_, _ = dhyfd.Discover(ctx, r,
				dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2), dhyfd.WithTopK(k),
				dhyfd.WithCheckpoint(dir, tick))
			faults.Reset()
			res, rerr := dhyfd.Discover(ctx, r,
				dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2), dhyfd.WithTopK(k),
				dhyfd.WithCheckpoint(dir, tick), dhyfd.WithResume(dir))
			if rerr != nil {
				t.Fatalf("resume failed: %v", rerr)
			}
			if !reflect.DeepEqual(res.FDs, base.FDs) {
				t.Fatalf("resumed top-%d differs:\n got %v\nwant %v", k, res.FDs, base.FDs)
			}
		})
	}
}

// TestResumeRejectsDamagedSnapshots covers the refusal contract at the
// public API: corrupt, truncated and version-skewed snapshots surface as
// the typed sentinels, never panics, and never a silently wrong run.
func TestResumeRejectsDamagedSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := dataset.Random(rng, 200, 6, 3)
	ctx := context.Background()

	// A healthy snapshot to damage: interrupt a checkpointed TANE run.
	dir := t.TempDir()
	faults.Arm(faults.EngineWorker, faults.Plan{Kind: faults.KindPanic, N: 8})
	_, _ = dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(dhyfd.TANE), dhyfd.WithWorkers(2),
		dhyfd.WithCheckpoint(dir, tick))
	faults.Reset()
	healthy, err := os.ReadFile(runstate.Path(dir))
	if err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}

	resume := func(t *testing.T, data []byte) error {
		t.Helper()
		d := t.TempDir()
		if err := os.WriteFile(runstate.Path(d), data, 0o600); err != nil {
			t.Fatal(err)
		}
		_, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(dhyfd.TANE), dhyfd.WithWorkers(2),
			dhyfd.WithResume(d))
		return err
	}

	t.Run("garbage", func(t *testing.T) {
		if err := resume(t, []byte("not a snapshot at all")); !errors.Is(err, dhyfd.ErrSnapshotCorrupt) {
			t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if err := resume(t, healthy[:len(healthy)/2]); !errors.Is(err, dhyfd.ErrSnapshotCorrupt) {
			t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("flipped-byte", func(t *testing.T) {
		bad := append([]byte(nil), healthy...)
		bad[len(bad)/2] ^= 0x20
		if err := resume(t, bad); !errors.Is(err, dhyfd.ErrSnapshotCorrupt) {
			t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		bad := append([]byte(nil), healthy...)
		bad[4] = 0x7f // container version byte after the magic
		if err := resume(t, bad); !errors.Is(err, dhyfd.ErrSnapshotVersion) {
			t.Fatalf("got %v, want ErrSnapshotVersion", err)
		}
	})
	t.Run("empty-dir-cold-starts", func(t *testing.T) {
		base, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(dhyfd.TANE), dhyfd.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(dhyfd.TANE), dhyfd.WithWorkers(2),
			dhyfd.WithResume(t.TempDir()))
		if err != nil {
			t.Fatalf("resume from empty dir should cold start, got %v", err)
		}
		if !dep.Equal(res.FDs, base.FDs) {
			t.Fatal("cold start changed the cover")
		}
	})
}

// TestResumeRejectsMismatchedRun: a healthy snapshot from a different
// relation, algorithm or result-shaping option must be refused with
// ErrSnapshotMismatch instead of silently producing a wrong cover.
func TestResumeRejectsMismatchedRun(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	r := dataset.Random(rng, 200, 6, 3)
	other := dataset.Random(rng, 200, 6, 3)
	ctx := context.Background()

	dir := t.TempDir()
	if _, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(dhyfd.TANE), dhyfd.WithWorkers(2),
		dhyfd.WithCheckpoint(dir, tick)); err != nil {
		t.Fatal(err)
	}

	cases := map[string][]dhyfd.Option{
		"different-algorithm": {dhyfd.WithAlgorithm(dhyfd.DHyFD), dhyfd.WithResume(dir)},
		"different-topk":      {dhyfd.WithAlgorithm(dhyfd.TANE), dhyfd.WithTopK(3), dhyfd.WithResume(dir)},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := dhyfd.Discover(ctx, r, opts...); !errors.Is(err, dhyfd.ErrSnapshotMismatch) {
				t.Fatalf("got %v, want ErrSnapshotMismatch", err)
			}
		})
	}
	t.Run("different-relation", func(t *testing.T) {
		if _, err := dhyfd.Discover(ctx, other, dhyfd.WithAlgorithm(dhyfd.TANE),
			dhyfd.WithResume(dir)); !errors.Is(err, dhyfd.ErrSnapshotMismatch) {
			t.Fatal("snapshot from another relation accepted")
		}
	})
}

// TestCheckpointUnsupportedAlgorithm: the FDEP variants have no resumable
// frontier; asking for durability there is a configuration error.
func TestCheckpointUnsupportedAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := dataset.Random(rng, 100, 5, 3)
	for _, a := range []dhyfd.Algorithm{dhyfd.FDEP, dhyfd.FDEP1, dhyfd.FDEP2} {
		if _, err := dhyfd.Discover(context.Background(), r, dhyfd.WithAlgorithm(a),
			dhyfd.WithCheckpoint(t.TempDir(), 0)); err == nil {
			t.Errorf("%v accepted WithCheckpoint", a)
		}
	}
}

// TestRetryAbsorbsTransientFault: with WithRetries, a transient injected
// worker failure is re-run instead of surfacing, the cover matches the
// fault-free baseline, and the supervision counters land in the report.
// An explicitly fatal plan must still surface immediately.
func TestRetryAbsorbsTransientFault(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	r := dataset.Random(rng, 300, 7, 4)
	ctx := context.Background()

	for _, a := range []dhyfd.Algorithm{dhyfd.DHyFD, dhyfd.HyFD, dhyfd.TANE} {
		t.Run(a.String(), func(t *testing.T) {
			base, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(4))
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			defer faults.Reset()
			faults.Arm(faults.EngineWorker, faults.Plan{Kind: faults.KindPanic, N: 3})
			res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(4),
				dhyfd.WithRetries(2))
			fired := !faults.Armed(faults.EngineWorker)
			if err != nil {
				t.Fatalf("retry did not absorb the transient fault: %v", err)
			}
			if !dep.Equal(res.FDs, base.FDs) {
				t.Fatal("retried run changed the cover")
			}
			if fired {
				if res.Stats.Counters["retries"] == 0 {
					t.Error("fault fired but no retries reported")
				}
				if res.Stats.Counters["attempts"] == 0 {
					t.Error("retry layer active but no attempts reported")
				}
			}
		})
	}

	t.Run("fatal-class-not-retried", func(t *testing.T) {
		defer faults.Reset()
		faults.Arm(faults.EngineWorker, faults.Plan{
			Kind: faults.KindPanic, N: 3, Class: faults.ClassFatal,
		})
		_, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(dhyfd.TANE), dhyfd.WithWorkers(4),
			dhyfd.WithRetries(5))
		if !faults.Armed(faults.EngineWorker) {
			// Fired: a fatal failure must surface despite the retry budget.
			var perr *dhyfd.PanicError
			if !errors.As(err, &perr) {
				t.Fatalf("fatal fault surfaced as %v, want *PanicError", err)
			}
			if perr.Class != faults.ClassFatal {
				t.Fatalf("PanicError class = %v, want fatal", perr.Class)
			}
		}
	})
}
