package integration

import (
	"context"
	"testing"

	dhyfd "repro"
	"repro/internal/check"
	"repro/internal/dep"
	"repro/internal/relation"
	"repro/internal/tane"
)

// FuzzDiscoverSmall throws arbitrary tiny relations at the full Discover
// pipeline: the run must never panic, every emitted FD must hold on the
// data, and the cover must agree with an independent TANE run.
func FuzzDiscoverSmall(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, uint8(2), uint8(3))
	f.Add([]byte{}, uint8(1), uint8(0))
	f.Add([]byte{7, 7, 7, 7}, uint8(4), uint8(1))
	f.Add([]byte{0, 0, 1, 1, 0, 1}, uint8(3), uint8(2))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, ncols, nrows uint8) {
		cols := 1 + int(ncols)%4
		rows := int(nrows) % 13
		codes := make([][]int32, cols)
		for c := range codes {
			codes[c] = make([]int32, rows)
			for r := 0; r < rows; r++ {
				b := byte(0)
				if i := c*rows + r; i < len(data) {
					b = data[i]
				}
				codes[c][r] = int32(b) % 5
			}
		}
		rel := relation.FromCodes(nil, codes, nil, relation.NullEqNull)

		res, err := dhyfd.Discover(context.Background(), rel)
		if err != nil {
			t.Fatalf("Discover failed on a healthy relation: %v", err)
		}
		for _, fd := range res.FDs {
			if !check.Holds(rel, fd) {
				t.Fatalf("unsound FD %v on %d×%d relation", fd.Format(rel.Names), rows, cols)
			}
		}
		want, _, err := tane.DiscoverRun(context.Background(), rel, 0)
		if err != nil {
			t.Fatalf("tane failed: %v", err)
		}
		if !dep.Equal(res.FDs, want) {
			t.Fatalf("covers disagree on %d×%d relation: dhyfd %d FDs, tane %d FDs", rows, cols, len(res.FDs), len(want))
		}
	})
}
