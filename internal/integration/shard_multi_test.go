package integration

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	dhyfd "repro"
	"repro/internal/dataset"
	"repro/internal/dep"
)

// allAlgorithms spans every driver: the PLI-based four route the
// multi-attribute Refine/Intersect kernels and cluster sampling through
// the shard scheme, the row-based two route their negative-cover pair
// scan through it.
var allAlgorithms = []dhyfd.Algorithm{
	dhyfd.DHyFD, dhyfd.HyFD, dhyfd.TANE, dhyfd.FDEP2, dhyfd.FastFDs, dhyfd.DFD,
}

// TestMultiAttrShardCoverEquivalence asserts the sharded multi-attribute
// kernels are purely an execution strategy across every algorithm: the
// discovered cover is identical at every shard size — degenerate one-row
// shards, sizes that leave ragged tails, and shards larger than the
// relation — and identical to the serial (Workers=1) run.
func TestMultiAttrShardCoverEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	r := dataset.Random(rng, 240, 6, 4)
	ctx := context.Background()

	for _, a := range allAlgorithms {
		t.Run(a.String(), func(t *testing.T) {
			serial, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a))
			if err != nil {
				t.Fatalf("serial run failed: %v", err)
			}
			for _, shardSize := range []int{1, 7, 64, r.NumRows() + 13} {
				for _, workers := range []int{2, 4} {
					opts := []dhyfd.Option{
						dhyfd.WithAlgorithm(a),
						dhyfd.WithWorkers(workers),
						dhyfd.WithShardSize(shardSize),
					}
					if a == dhyfd.DFD {
						opts = append(opts, dhyfd.WithPartitionCache(16<<20))
					}
					res, err := dhyfd.Discover(ctx, r, opts...)
					if err != nil {
						t.Fatalf("shard %d workers %d: %v", shardSize, workers, err)
					}
					if !dep.Equal(res.FDs, serial.FDs) {
						t.Errorf("shard %d workers %d changed the cover: %d vs %d FDs",
							shardSize, workers, len(res.FDs), len(serial.FDs))
					}
				}
			}
		})
	}
}

// TestPagedCoverEquivalence asserts the column pager is purely a storage
// strategy: a relation ingested with paged columns yields a cover whose
// formatted bytes hash identically to the resident ingest's, for every
// algorithm, serial and sharded.
func TestPagedCoverEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var sb strings.Builder
	sb.WriteString("a,b,c,d,e\n")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "%d,%d,%d,%d,%d\n",
			rng.Intn(5), rng.Intn(7), rng.Intn(3), rng.Intn(11), i%2)
	}
	data := sb.String()
	ctx := context.Background()

	resident, err := dhyfd.ReadCSV(strings.NewReader(data), dhyfd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	paged, err := dhyfd.ReadCSV(strings.NewReader(data), dhyfd.Options{
		PageColumns: true, PageDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	if !paged.Paged() {
		t.Fatal("relation not paged")
	}

	coverSHA := func(r *dhyfd.Relation, opts ...dhyfd.Option) [32]byte {
		t.Helper()
		res, err := dhyfd.Discover(ctx, r, opts...)
		if err != nil {
			t.Fatalf("discover on %v: %v", opts, err)
		}
		return sha256.Sum256([]byte(dhyfd.FormatFDs(res.FDs, r.Names)))
	}

	for _, a := range allAlgorithms {
		t.Run(a.String(), func(t *testing.T) {
			want := coverSHA(resident, dhyfd.WithAlgorithm(a))
			if got := coverSHA(paged, dhyfd.WithAlgorithm(a)); got != want {
				t.Error("paged serial run changed the cover bytes")
			}
			sharded := []dhyfd.Option{
				dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2), dhyfd.WithShardSize(64),
			}
			if a == dhyfd.DFD {
				sharded = append(sharded, dhyfd.WithPartitionCache(16<<20))
			}
			if got := coverSHA(paged, sharded...); got != want {
				t.Error("paged sharded run changed the cover bytes")
			}
		})
	}

	// The pager's traffic must land in the run report.
	res, err := dhyfd.Discover(ctx, paged, dhyfd.WithAlgorithm(dhyfd.DHyFD))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ColumnsPaged != int64(paged.NumCols()) {
		t.Errorf("ColumnsPaged = %d, want %d", res.Stats.ColumnsPaged, paged.NumCols())
	}
}
