package integration

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fdep"
	"repro/internal/hyfd"
	"repro/internal/sampling"
	"repro/internal/tane"
)

// TestCancellationSurfacesEverywhere: every algorithm must return promptly
// with an error on a pre-cancelled context — this is what keeps the
// benchmark harness's TL runs from leaking work.
func TestCancellationSurfacesEverywhere(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(5))
	r := dataset.Random(rng, 80, 6, 3)

	if _, err := tane.DiscoverCtx(ctx, r); err == nil {
		t.Error("tane ignored cancellation")
	}
	for _, v := range []fdep.Variant{fdep.Classic, fdep.NonRedundant, fdep.Sorted} {
		if _, err := fdep.DiscoverCtx(ctx, r, v); err == nil {
			t.Errorf("fdep %v ignored cancellation", v)
		}
	}
	if _, _, err := hyfd.DiscoverCtx(ctx, r, hyfd.DefaultConfig()); err == nil {
		t.Error("hyfd ignored cancellation")
	}
	if _, _, err := core.DiscoverCtx(ctx, r, core.DefaultConfig()); err == nil {
		t.Error("dhyfd ignored cancellation")
	}
	if _, err := sampling.NegativeCoverCtx(ctx, r); err == nil {
		t.Error("negative cover ignored cancellation")
	}
}

// TestParallelCancellation: the worker pool must drain on cancellation.
func TestParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _ := dataset.ByName("ncvoter")
	r := b.Generate(300, 12)
	if _, _, err := core.DiscoverCtx(ctx, r, core.Config{Ratio: 3, Workers: 4}); err == nil {
		t.Error("parallel dhyfd ignored cancellation")
	}
}
