package integration

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	dhyfd "repro"
	"repro/internal/check"
	"repro/internal/dataset"
	"repro/internal/dep"
	"repro/internal/faults"
)

// pliAlgorithms are the drivers whose bootstrap builds single-attribute
// partitions and therefore routes through the sharded builder. DFD only
// does so when a cache is attached (its prewarm), so its runs below add
// one.
var pliAlgorithms = []dhyfd.Algorithm{dhyfd.DHyFD, dhyfd.HyFD, dhyfd.TANE, dhyfd.DFD}

// shardOpts builds the option set for one sharded run.
func shardOpts(a dhyfd.Algorithm, shardSize int) []dhyfd.Option {
	opts := []dhyfd.Option{dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2)}
	if shardSize > 0 {
		opts = append(opts, dhyfd.WithShardSize(shardSize))
	}
	if a == dhyfd.DFD {
		opts = append(opts, dhyfd.WithPartitionCache(16<<20))
	}
	return opts
}

// TestShardSizeCoverEquivalence asserts the sharded bootstrap is purely
// an execution strategy: every shard size — one row per shard, tiny,
// medium, larger than the relation — discovers the identical cover.
func TestShardSizeCoverEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := dataset.Random(rng, 300, 6, 4)
	ctx := context.Background()

	for _, a := range pliAlgorithms {
		t.Run(a.String(), func(t *testing.T) {
			base, err := dhyfd.Discover(ctx, r, shardOpts(a, 0)...)
			if err != nil {
				t.Fatalf("default-shard run failed: %v", err)
			}
			for _, shardSize := range []int{1, 7, 64, r.NumRows(), r.NumRows() + 13} {
				res, err := dhyfd.Discover(ctx, r, shardOpts(a, shardSize)...)
				if err != nil {
					t.Fatalf("shard size %d: %v", shardSize, err)
				}
				if !dep.Equal(res.FDs, base.FDs) {
					t.Errorf("shard size %d changed the cover: %d vs %d FDs",
						shardSize, len(res.FDs), len(base.FDs))
				}
			}
		})
	}
}

// TestChaosShardMerge arms the partition.shardmerge fault site under a
// shard size small enough that every bootstrap crosses it (300 rows, 16
// rows per shard): the fault must actually fire, a panic or error must
// surface typed from Discover, and whatever partial cover comes back
// must be sound.
func TestChaosShardMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := dataset.Random(rng, 300, 6, 4)
	ctx := context.Background()
	const shardSize = 16

	plans := []faults.Plan{
		{Kind: faults.KindPanic, N: 1},
		{Kind: faults.KindError, N: 1},
		{Kind: faults.KindError, N: 3},
	}
	for _, plan := range plans {
		for _, a := range pliAlgorithms {
			name := fmt.Sprintf("%v@%d/%v", plan.Kind, plan.N, a)
			t.Run(name, func(t *testing.T) {
				defer faults.Reset()
				faults.Arm(faults.PartitionShardMerge, plan)
				res, err := dhyfd.Discover(ctx, r, shardOpts(a, shardSize)...)
				if res == nil {
					t.Fatal("Discover returned a nil result")
				}
				if faults.Armed(faults.PartitionShardMerge) {
					t.Fatal("shard merge fault never fired despite 19 shards per attribute")
				}
				if err == nil {
					t.Fatal("fired shard-merge fault did not surface")
				}
				if !errors.Is(err, faults.ErrInjected) {
					t.Fatalf("fired fault surfaced as untyped error %v", err)
				}
				if plan.Kind == faults.KindPanic {
					var perr *dhyfd.PanicError
					if !errors.As(err, &perr) {
						t.Fatalf("panic injection surfaced as %T, want *PanicError", err)
					}
				}
				for _, f := range res.FDs {
					if !check.Holds(r, f) {
						t.Errorf("unsound FD emitted: %v", f.Format(r.Names))
					}
				}
			})
		}
	}

	// An armed-but-unfired plan (the default shard size keeps the whole
	// relation in one shard, skipping the merge path) must leave the
	// cover untouched.
	base, err := dhyfd.Discover(ctx, r, shardOpts(dhyfd.DHyFD, 0)...)
	if err != nil {
		t.Fatalf("fault-free run failed: %v", err)
	}
	defer faults.Reset()
	faults.Arm(faults.PartitionShardMerge, faults.Plan{Kind: faults.KindError, N: 1})
	res, err := dhyfd.Discover(ctx, r, shardOpts(dhyfd.DHyFD, 0)...)
	if err != nil {
		t.Fatalf("unfired run errored: %v", err)
	}
	if !faults.Armed(faults.PartitionShardMerge) {
		t.Fatal("single-shard bootstrap crossed the merge site unexpectedly")
	}
	if !dep.Equal(res.FDs, base.FDs) {
		t.Error("unfired fault changed the discovered cover")
	}
}

// TestSpillCoverMatchesResident forces the spill tier on with a cache far
// too small to keep anything resident and asserts it is purely a storage
// strategy: the cover matches the resident run's, spills and reloads
// actually happen, and the run-private cache removes its temp files when
// the run ends.
func TestSpillCoverMatchesResident(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := dataset.Random(rng, 300, 6, 4)
	ctx := context.Background()
	dir := t.TempDir()

	for _, a := range pliAlgorithms {
		t.Run(a.String(), func(t *testing.T) {
			resident, err := dhyfd.Discover(ctx, r, shardOpts(a, 0)...)
			if err != nil {
				t.Fatalf("resident run failed: %v", err)
			}
			opts := append(shardOpts(a, 0),
				dhyfd.WithPartitionCache(4096), // a few entries at most: everything else spills
				dhyfd.WithSpillDir(dir))
			res, err := dhyfd.Discover(ctx, r, opts...)
			if err != nil {
				t.Fatalf("spill run failed: %v", err)
			}
			if !dep.Equal(res.FDs, resident.FDs) {
				t.Errorf("spill tier changed the cover: %d vs %d FDs",
					len(res.FDs), len(resident.FDs))
			}
			if res.Stats.Counters["cache_spills"] == 0 {
				t.Error("spill run reported no spills")
			}
		})
	}

	// The run-private spill caches must have cleaned up behind themselves.
	leftovers, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("spill temp files leaked: %v", leftovers)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Errorf("spill base dir should survive its runs: %v", err)
	}
}
