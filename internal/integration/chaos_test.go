package integration

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	dhyfd "repro"
	"repro/internal/check"
	"repro/internal/dataset"
	"repro/internal/dep"
	"repro/internal/faults"
)

// chaosAlgorithms covers every driver family: the DDM pipeline, the
// sampling-based hybrids, the lattice algorithms and the row-based ones.
var chaosAlgorithms = []dhyfd.Algorithm{
	dhyfd.DHyFD, dhyfd.HyFD, dhyfd.TANE, dhyfd.FDEP2, dhyfd.FastFDs, dhyfd.DFD,
}

// TestChaos arms every fault site with every plan shape against every
// algorithm and asserts the resilience contract: no crash ever escapes
// Discover, a fired fault surfaces as a typed error carrying
// faults.ErrInjected, whatever cover comes back is sound, the run report
// survives, and no goroutines leak. Plans whose site an algorithm never
// reaches (or not often enough) simply don't fire; those runs must match
// the fault-free baseline exactly.
func TestChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := dataset.Random(rng, 200, 6, 4)
	ctx := context.Background()

	baseline := map[dhyfd.Algorithm][]dep.FD{}
	for _, a := range chaosAlgorithms {
		res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2))
		if err != nil {
			t.Fatalf("fault-free %v run failed: %v", a, err)
		}
		baseline[a] = res.FDs
	}

	plans := []faults.Plan{
		{Kind: faults.KindPanic, N: 1},
		{Kind: faults.KindPanic, N: 3},
		{Kind: faults.KindError, N: 1},
	}
	before := runtime.NumGoroutine()
	for _, site := range faults.Sites() {
		for _, plan := range plans {
			for _, a := range chaosAlgorithms {
				name := fmt.Sprintf("%s/%v@%d/%v", site, plan.Kind, plan.N, a)
				t.Run(name, func(t *testing.T) {
					defer faults.Reset()
					faults.Arm(site, plan)
					res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2))
					if res == nil {
						t.Fatal("Discover returned a nil result")
					}
					fired := !faults.Armed(site)
					if err != nil {
						if !fired {
							t.Fatalf("error %v without the fault firing", err)
						}
						if !errors.Is(err, faults.ErrInjected) {
							t.Fatalf("fired fault surfaced as untyped error %v", err)
						}
						if plan.Kind == faults.KindPanic {
							var perr *dhyfd.PanicError
							if !errors.As(err, &perr) {
								t.Fatalf("panic injection surfaced as %T, want *PanicError", err)
							}
							if perr.Site == "" || len(perr.Stack) == 0 {
								t.Errorf("PanicError missing diagnostics: site=%q stack=%d bytes", perr.Site, len(perr.Stack))
							}
						}
					} else if !fired && !dep.Equal(res.FDs, baseline[a]) {
						t.Error("unfired fault changed the discovered cover")
					}
					// Soundness: every emitted FD must hold on the data,
					// whether the run fired, errored, or completed.
					for _, f := range res.FDs {
						if !check.Holds(r, f) {
							t.Errorf("unsound FD emitted: %v", f.Format(r.Names))
						}
					}
				})
			}
		}
	}
	// The whole matrix must leave no goroutines behind; allow the
	// runtime a moment to retire finished workers.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:runtime.Stack(buf, true)])
	}
}

// TestChaosTopK repeats the resilience contract with the fused top-k
// search enabled, which adds the topk.prune fault site to the hot path:
// every bound check passes through it, so small-N plans fire reliably.
// A fired fault must surface typed; whatever partial top-k comes back
// must be sound; unfired runs must match the fault-free top-k baseline.
func TestChaosTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := dataset.Random(rng, 200, 6, 4)
	ctx := context.Background()
	const k = 5

	topkAlgorithms := []dhyfd.Algorithm{dhyfd.DHyFD, dhyfd.HyFD, dhyfd.TANE, dhyfd.DFD}
	baseline := map[dhyfd.Algorithm][]dep.FD{}
	for _, a := range topkAlgorithms {
		res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2), dhyfd.WithTopK(k))
		if err != nil {
			t.Fatalf("fault-free %v top-k run failed: %v", a, err)
		}
		baseline[a] = res.FDs
	}

	plans := []faults.Plan{
		{Kind: faults.KindPanic, N: 1},
		{Kind: faults.KindPanic, N: 3},
		{Kind: faults.KindError, N: 1},
		{Kind: faults.KindError, N: 3},
	}
	for _, plan := range plans {
		for _, a := range topkAlgorithms {
			name := fmt.Sprintf("%v@%d/%v", plan.Kind, plan.N, a)
			t.Run(name, func(t *testing.T) {
				defer faults.Reset()
				faults.Arm(faults.TopKPrune, plan)
				res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2), dhyfd.WithTopK(k))
				if res == nil {
					t.Fatal("Discover returned a nil result")
				}
				fired := !faults.Armed(faults.TopKPrune)
				if err != nil {
					if !fired {
						t.Fatalf("error %v without the fault firing", err)
					}
					if !errors.Is(err, faults.ErrInjected) {
						t.Fatalf("fired fault surfaced as untyped error %v", err)
					}
					var perr *dhyfd.PanicError
					if !errors.As(err, &perr) {
						t.Fatalf("injection surfaced as %T, want *PanicError", err)
					}
				} else if !fired && !dep.Equal(res.FDs, baseline[a]) {
					t.Error("unfired fault changed the top-k cover")
				}
				if len(res.FDs) > k {
					t.Errorf("top-%d result has %d FDs", k, len(res.FDs))
				}
				for _, f := range res.FDs {
					if !check.Holds(r, f) {
						t.Errorf("unsound FD emitted: %v", f.Format(r.Names))
					}
				}
			})
		}
	}
}

// TestChaosDelayInjection exercises KindDelay: the run must simply take
// the extra time and finish with the baseline cover.
func TestChaosDelayInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := dataset.Random(rng, 120, 5, 3)
	want, err := dhyfd.Discover(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	defer faults.Reset()
	faults.Arm(faults.PartitionBuild, faults.Plan{Kind: faults.KindDelay, N: 1, Delay: 50 * time.Millisecond})
	start := time.Now()
	res, err := dhyfd.Discover(context.Background(), r)
	if err != nil {
		t.Fatalf("delay injection broke the run: %v", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("delay did not happen")
	}
	if !dep.Equal(res.FDs, want.FDs) {
		t.Error("delay changed the cover")
	}
}
