// Package integration cross-checks the complete pipeline: every discovery
// algorithm against every benchmark shape, covers against implication
// equivalence, and rankings against dataset totals.
package integration

import (
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dataset"
	"repro/internal/dep"
	"repro/internal/dfd"
	"repro/internal/fastfds"
	"repro/internal/fdep"
	"repro/internal/hyfd"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/tane"
)

// discoverAll runs all six algorithms and fails the test if any pair
// disagrees. Returns the agreed left-reduced cover.
func discoverAll(t *testing.T, name string, r *relation.Relation) []dep.FD {
	t.Helper()
	base := core.Discover(r)
	checks := map[string][]dep.FD{
		"hyfd":    hyfd.Discover(r),
		"tane":    tane.Discover(r),
		"fdep":    fdep.Discover(r, fdep.Classic),
		"fdep1":   fdep.Discover(r, fdep.NonRedundant),
		"fdep2":   fdep.Discover(r, fdep.Sorted),
		"fastfds": fastfds.Discover(r),
		"dfd":     dfd.Discover(r),
	}
	for algo, fds := range checks {
		if !dep.Equal(base, fds) {
			only, other := dep.Diff(base, fds, r.Names)
			t.Fatalf("%s: dhyfd vs %s disagree.\nonly dhyfd: %v\nonly %s: %v",
				name, algo, only, algo, other)
		}
	}
	return base
}

// TestAllAlgorithmsOnAllShapes runs every algorithm on a small fragment of
// every benchmark shape — the broadest agreement check in the suite.
func TestAllAlgorithmsOnAllShapes(t *testing.T) {
	for _, b := range dataset.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			cols := b.DefaultCols
			if cols > 12 {
				cols = 12
			}
			r := b.Generate(120, cols)
			fds := discoverAll(t, b.Name, r)
			// And against the exponential oracle where feasible.
			if r.NumCols() <= 12 {
				want := brute.MinimalFDs(r)
				if !dep.Equal(fds, want) {
					only, other := dep.Diff(fds, want, r.Names)
					t.Fatalf("vs brute force: only algos %v, only brute %v", only, other)
				}
			}
		})
	}
}

// TestNullSemanticsAgreement repeats the agreement check under null ≠ null
// on the incomplete shapes.
func TestNullSemanticsAgreement(t *testing.T) {
	for _, b := range dataset.All() {
		if !b.Incomplete {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			cols := b.DefaultCols
			if cols > 10 {
				cols = 10
			}
			r := b.GenerateSemantics(100, cols, relation.NullNeqNull)
			fds := discoverAll(t, b.Name, r)
			if r.NumCols() <= 12 {
				want := brute.MinimalFDs(r)
				if !dep.Equal(fds, want) {
					t.Fatal("vs brute force under null≠null")
				}
			}
		})
	}
}

// TestPipelineEndToEnd exercises discover → canonicalize → rank → totals
// and their mutual invariants on moderately sized shapes.
func TestPipelineEndToEnd(t *testing.T) {
	for _, name := range []string{"ncvoter", "bridges", "echo", "breast"} {
		b, err := dataset.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r := b.GenerateDefault()
		n := r.NumCols()

		lr := core.Discover(r)
		can := cover.Canonical(n, lr)

		if !cover.Equivalent(n, lr, can) {
			t.Errorf("%s: canonical cover not equivalent", name)
		}
		if !cover.UniqueLHS(can) {
			t.Errorf("%s: canonical cover has duplicate LHSs", name)
		}
		if dep.Count(can) > dep.Count(lr) {
			t.Errorf("%s: canonical bigger than left-reduced", name)
		}

		ranked := ranking.Rank(r, can)
		if len(ranked) != len(can) {
			t.Fatalf("%s: ranked %d of %d", name, len(ranked), len(can))
		}
		for _, rk := range ranked {
			c := rk.Counts
			if c.NoNulls > c.NoNullRHS || c.NoNullRHS > c.WithNulls {
				t.Errorf("%s: count ordering violated: %+v", name, c)
			}
			if c.WithNulls > r.NumRows()*rk.FD.RHS.Count() {
				t.Errorf("%s: count exceeds occurrences: %+v", name, c)
			}
		}

		tot := ranking.Totals(r, can)
		if tot.RedWithNulls > tot.Values || tot.Red > tot.RedWithNulls {
			t.Errorf("%s: implausible totals %+v", name, tot)
		}
		// Totals are cover-invariant.
		if tot2 := ranking.Totals(r, lr); tot2 != tot {
			t.Errorf("%s: totals differ between covers: %+v vs %+v", name, tot, tot2)
		}
	}
}

// TestFragmentMonotonicity: a row fragment of a relation satisfies at least
// the FDs of the full relation... which is false in general for *minimal*
// covers, but the implied-FD sets must be monotone: every FD valid on the
// full data is valid on the fragment.
func TestFragmentMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	b, _ := dataset.ByName("ncvoter")
	full := b.Generate(400, 10)
	frag := full.Head(150)
	fullCover := core.Discover(full)
	fragCover := core.Discover(frag)
	nf := full.NumCols()
	e := cover.NewEngine(nf, fragCover)
	for _, f := range fullCover {
		if !e.Implies(f.LHS, f.RHS, -1) {
			t.Errorf("FD %s valid on full data but not on fragment", f.Format(full.Names))
		}
	}
	_ = rng
}
