package integration

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dep"
	"repro/internal/dfd"
	"repro/internal/engine"
	"repro/internal/fastfds"
	"repro/internal/fdep"
	"repro/internal/hyfd"
	"repro/internal/tane"
)

// TestParallelCoversMatchSerial: the worker-pool width must never change
// the discovered cover. DHyFD, HyFD and TANE — the three algorithms with a
// parallel validation hot path — are run at 1, 2 and 8 workers on several
// benchmark shapes and compared against each other and across widths.
func TestParallelCoversMatchSerial(t *testing.T) {
	fixtures := []struct {
		name       string
		rows, cols int
	}{
		{"ncvoter", 300, 10},
		{"bridges", 108, 9},
		{"abalone", 400, 8},
	}
	widths := []int{1, 2, 8}
	for _, fx := range fixtures {
		b, err := dataset.ByName(fx.name)
		if err != nil {
			t.Fatal(err)
		}
		r := b.Generate(fx.rows, fx.cols)
		ctx := context.Background()

		var want []dep.FD
		for _, w := range widths {
			got, _, err := core.DiscoverRun(ctx, r, core.Config{Workers: w})
			if err != nil {
				t.Fatalf("%s dhyfd workers=%d: %v", fx.name, w, err)
			}
			if want == nil {
				want = got
			} else if !dep.Equal(got, want) {
				t.Errorf("%s: dhyfd cover at workers=%d differs from workers=1", fx.name, w)
			}
		}
		for _, w := range widths {
			got, _, err := hyfd.DiscoverRun(ctx, r, hyfd.Config{Workers: w})
			if err != nil {
				t.Fatalf("%s hyfd workers=%d: %v", fx.name, w, err)
			}
			if !dep.Equal(got, want) {
				t.Errorf("%s: hyfd cover at workers=%d differs from dhyfd serial", fx.name, w)
			}
		}
		for _, w := range widths {
			got, _, err := tane.DiscoverRun(ctx, r, w)
			if err != nil {
				t.Fatalf("%s tane workers=%d: %v", fx.name, w, err)
			}
			if !dep.Equal(got, want) {
				t.Errorf("%s: tane cover at workers=%d differs from dhyfd serial", fx.name, w)
			}
		}
	}
}

// TestRunStatsPopulated: every algorithm must emit a run report with at
// least one phase of non-zero wall time and a consistent FD count.
func TestRunStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := dataset.Random(rng, 200, 7, 4)
	ctx := context.Background()

	runs := map[string]func() ([]dep.FD, *engine.RunStats, error){
		"dhyfd":   func() ([]dep.FD, *engine.RunStats, error) { return core.DiscoverRun(ctx, r, core.DefaultConfig()) },
		"hyfd":    func() ([]dep.FD, *engine.RunStats, error) { return hyfd.DiscoverRun(ctx, r, hyfd.DefaultConfig()) },
		"tane":    func() ([]dep.FD, *engine.RunStats, error) { return tane.DiscoverRun(ctx, r, 1) },
		"fdep":    func() ([]dep.FD, *engine.RunStats, error) { return fdep.DiscoverRun(ctx, r, fdep.Classic) },
		"fdep1":   func() ([]dep.FD, *engine.RunStats, error) { return fdep.DiscoverRun(ctx, r, fdep.NonRedundant) },
		"fdep2":   func() ([]dep.FD, *engine.RunStats, error) { return fdep.DiscoverRun(ctx, r, fdep.Sorted) },
		"fastfds": func() ([]dep.FD, *engine.RunStats, error) { return fastfds.DiscoverRun(ctx, r) },
		"dfd":     func() ([]dep.FD, *engine.RunStats, error) { return dfd.DiscoverRun(ctx, r) },
	}
	for name, run := range runs {
		fds, rs, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rs == nil {
			t.Fatalf("%s: nil run stats", name)
		}
		if rs.Algorithm != name {
			t.Errorf("%s: stats name %q", name, rs.Algorithm)
		}
		if len(rs.Phases) == 0 {
			t.Errorf("%s: no phases recorded", name)
		}
		if rs.PhaseTotal() <= 0 {
			t.Errorf("%s: zero total phase time", name)
		}
		if rs.Elapsed <= 0 {
			t.Errorf("%s: Elapsed not stamped", name)
		}
		if rs.Cancelled {
			t.Errorf("%s: Cancelled on a clean run", name)
		}
		if rs.FDs != int64(len(fds)) {
			t.Errorf("%s: stats.FDs=%d, len(fds)=%d", name, rs.FDs, len(fds))
		}
		if rs.String() == "" {
			t.Errorf("%s: empty String()", name)
		}
	}
}

// TestMidRunCancellationIsPrompt: cancelling while validation is under way
// must surface context.Canceled quickly — within one validation batch, not
// after the remaining lattice is processed. The relation is sized so a
// full run takes far longer than the accepted bound.
func TestMidRunCancellationIsPrompt(t *testing.T) {
	b, err := dataset.ByName("diabetic")
	if err != nil {
		t.Fatal(err)
	}
	r := b.Generate(1500, 20)

	full := time.Now()
	if _, _, err := core.DiscoverRun(context.Background(), r, core.Config{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	fullElapsed := time.Since(full)

	runs := map[string]func(ctx context.Context) (*engine.RunStats, error){
		"dhyfd": func(ctx context.Context) (*engine.RunStats, error) {
			_, rs, err := core.DiscoverRun(ctx, r, core.Config{Workers: 2})
			return rs, err
		},
		"hyfd": func(ctx context.Context) (*engine.RunStats, error) {
			_, rs, err := hyfd.DiscoverRun(ctx, r, hyfd.Config{Workers: 2})
			return rs, err
		},
		"tane": func(ctx context.Context) (*engine.RunStats, error) {
			_, rs, err := tane.DiscoverRun(ctx, r, 2)
			return rs, err
		},
	}
	// A cancelled run must finish well before a full one; the margin keeps
	// the test robust on slow CI machines while still catching a run that
	// ignores ctx until the end.
	bound := fullElapsed/2 + 250*time.Millisecond
	for name, run := range runs {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		rs, err := run(ctx)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
			continue
		}
		if rs == nil || !rs.Cancelled {
			t.Errorf("%s: partial stats missing Cancelled flag", name)
		}
		if elapsed > bound {
			t.Errorf("%s: cancellation took %v (full run %v, bound %v)", name, elapsed, fullElapsed, bound)
		}
	}
}
