package integration

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	dhyfd "repro"
	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/dep"
	"repro/internal/faults"
	"repro/internal/partition"
	"repro/internal/relation"
)

// latticeAlgorithms are the drivers with the fused top-k heap and
// approximate validation; the row-based ones satisfy WithTopK by ranking
// their full cover.
var latticeAlgorithms = []dhyfd.Algorithm{dhyfd.DHyFD, dhyfd.HyFD, dhyfd.TANE, dhyfd.DFD}

// TestTopKEquivalenceMatrix pins the fused search's defining property on
// every benchmark shape, every algorithm and two k values: WithTopK(k)
// must be byte-identical — same FDs, same order, same redundancy counts —
// to discovering the full cover, ranking it and truncating to k.
func TestTopKEquivalenceMatrix(t *testing.T) {
	ctx := context.Background()
	for _, b := range dataset.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			cols := b.DefaultCols
			if cols > 10 {
				cols = 10
			}
			r := b.Generate(120, cols)
			full, err := dhyfd.Discover(ctx, r)
			if err != nil {
				t.Fatal(err)
			}
			reference, _, err := dhyfd.Rank(ctx, r, full.FDs)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range dhyfd.Algorithms() {
				for _, k := range []int{1, 10} {
					res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithTopK(k))
					if err != nil {
						t.Fatalf("%v k=%d: %v", a, k, err)
					}
					want := reference
					if len(want) > k {
						want = want[:k]
					}
					if len(res.Ranked) != len(want) {
						t.Fatalf("%v k=%d: %d ranked FDs, want %d", a, k, len(res.Ranked), len(want))
					}
					for i := range want {
						g, w := res.Ranked[i], want[i]
						if !g.FD.LHS.Equal(w.FD.LHS) || !g.FD.RHS.Equal(w.FD.RHS) || g.Counts != w.Counts {
							t.Fatalf("%v k=%d: Ranked[%d] = %v %+v, want %v %+v",
								a, k, i, g.FD.Format(r.Names), g.Counts, w.FD.Format(r.Names), w.Counts)
						}
						if !res.FDs[i].LHS.Equal(w.FD.LHS) || !res.FDs[i].RHS.Equal(w.FD.RHS) {
							t.Fatalf("%v k=%d: FDs[%d] disagrees with Ranked[%d]", a, k, i, i)
						}
					}
					if res.Stats.FDs != int64(len(want)) {
						t.Errorf("%v k=%d: Stats.FDs = %d, want %d", a, k, res.Stats.FDs, len(want))
					}
				}
			}
		})
	}
}

// bruteApproxCover computes the minimal approximate FDs of r directly from
// the g3 definition — the oracle the drivers' fused approximate search
// must reproduce.
func bruteApproxCover(r *relation.Relation, maxViol int) []dep.FD {
	n := r.NumCols()
	valid := map[int]map[string]bool{} // rhs -> lhs key -> g3 ok
	keys := map[string]bitset.Set{}
	var sets []bitset.Set
	for mask := 0; mask < 1<<n; mask++ {
		s := bitset.New(n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s.Add(i)
			}
		}
		sets = append(sets, s)
		keys[s.Key()] = s
	}
	for a := 0; a < n; a++ {
		valid[a] = map[string]bool{}
		for _, s := range sets {
			if s.Contains(a) {
				continue
			}
			p := partition.ForAttrs(s, r.Cols, r.Cards)
			valid[a][s.Key()] = partition.G3Violations(p, r.Cols[a], r.Cards[a], maxViol) <= maxViol
		}
	}
	var out []dep.FD
	for a := 0; a < n; a++ {
		for _, s := range sets {
			if s.Contains(a) || !valid[a][s.Key()] {
				continue
			}
			minimal := true
			for b := s.Next(0); b >= 0 && minimal; b = s.Next(b + 1) {
				gen := s.Clone()
				gen.Remove(b)
				if valid[a][gen.Key()] {
					minimal = false
				}
			}
			if minimal {
				rhs := bitset.New(n)
				rhs.Add(a)
				out = append(out, dep.FD{LHS: s.Clone(), RHS: rhs})
			}
		}
	}
	dep.Sort(out)
	return out
}

// TestMaxErrorAgainstBruteOracle checks every lattice algorithm's
// approximate cover against the exponential g3 oracle on small relations.
func TestMaxErrorAgainstBruteOracle(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"ncvoter", "flight"} {
		b, err := dataset.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r := b.Generate(120, 6)
		for _, eps := range []float64{0.01, 0.05} {
			maxViol := int(eps * float64(r.NumRows()))
			want := bruteApproxCover(r, maxViol)
			for _, a := range latticeAlgorithms {
				res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithMaxError(eps))
				if err != nil {
					t.Fatalf("%s/%v eps=%v: %v", name, a, eps, err)
				}
				if !dep.Equal(res.FDs, want) {
					only, other := dep.Diff(res.FDs, want, r.Names)
					t.Errorf("%s/%v eps=%v: approximate cover disagrees with oracle.\nonly algo: %v\nonly oracle: %v",
						name, a, eps, only, other)
				}
			}
		}
	}
}

// TestMaxErrorZeroIsExact: eps = 0 must take the exact code path and
// reproduce the exact cover byte for byte.
func TestMaxErrorZeroIsExact(t *testing.T) {
	ctx := context.Background()
	b, err := dataset.ByName("ncvoter")
	if err != nil {
		t.Fatal(err)
	}
	r := b.Generate(120, 8)
	for _, a := range latticeAlgorithms {
		exact, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a))
		if err != nil {
			t.Fatal(err)
		}
		zero, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithMaxError(0))
		if err != nil {
			t.Fatal(err)
		}
		if !dep.Equal(exact.FDs, zero.FDs) {
			t.Errorf("%v: WithMaxError(0) changed the cover", a)
		}
	}
}

// TestTopKWithMaxError combines both options: the fused approximate top-k
// must equal ranking the full approximate cover and truncating.
func TestTopKWithMaxError(t *testing.T) {
	ctx := context.Background()
	b, err := dataset.ByName("flight")
	if err != nil {
		t.Fatal(err)
	}
	r := b.Generate(120, 8)
	const eps = 0.05
	for _, a := range latticeAlgorithms {
		full, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithMaxError(eps))
		if err != nil {
			t.Fatal(err)
		}
		reference, _, err := dhyfd.Rank(ctx, r, full.FDs)
		if err != nil {
			t.Fatal(err)
		}
		if len(reference) > 5 {
			reference = reference[:5]
		}
		res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithMaxError(eps), dhyfd.WithTopK(5))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Ranked) != len(reference) {
			t.Fatalf("%v: %d ranked, want %d", a, len(res.Ranked), len(reference))
		}
		for i := range reference {
			if !res.Ranked[i].FD.LHS.Equal(reference[i].FD.LHS) || !res.Ranked[i].FD.RHS.Equal(reference[i].FD.RHS) {
				t.Fatalf("%v: Ranked[%d] = %v, want %v", a, i,
					res.Ranked[i].FD.Format(r.Names), reference[i].FD.Format(r.Names))
			}
		}
	}
}

// TestTopKCancellationMidPrune arms a delay on the top-k pruning fault
// site so the deadline fires while the search is inside a bound check; the
// partial top-k that comes back must be sound.
func TestTopKCancellationMidPrune(t *testing.T) {
	b, err := dataset.ByName("ncvoter")
	if err != nil {
		t.Fatal(err)
	}
	r := b.Generate(200, 10)
	for _, a := range latticeAlgorithms {
		t.Run(fmt.Sprint(a), func(t *testing.T) {
			defer faults.Reset()
			faults.Arm(faults.TopKPrune, faults.Plan{Kind: faults.KindDelay, N: 1, Delay: 150 * time.Millisecond})
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithTopK(3))
			if res == nil {
				t.Fatal("nil result")
			}
			if err != nil && !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want deadline or clean finish", err)
			}
			if err != nil && !res.Stats.Cancelled {
				t.Error("cancelled run must report Cancelled")
			}
			if len(res.FDs) > 3 {
				t.Fatalf("partial top-3 has %d FDs", len(res.FDs))
			}
			// Soundness: whatever made it into the heap holds on the data.
			for _, f := range res.FDs {
				p := partition.ForAttrs(f.LHS, r.Cols, r.Cards)
				for rhs := f.RHS.Next(0); rhs >= 0; rhs = f.RHS.Next(rhs + 1) {
					if partition.G3Violations(p, r.Cols[rhs], r.Cards[rhs], 0) != 0 {
						t.Errorf("unsound FD in partial top-k: %v", f.Format(r.Names))
					}
				}
			}
		})
	}
}
