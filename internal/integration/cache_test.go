package integration

import (
	"context"
	"math/rand"
	"testing"

	dhyfd "repro"
	"repro/internal/check"
	"repro/internal/dataset"
	"repro/internal/dep"
	"repro/internal/faults"
)

// TestPLICacheMatrix runs every algorithm of the chaos matrix with and
// without a PLI cache and asserts the cache is purely an optimization:
// the discovered cover is identical, and the algorithms that route
// through the cache actually traffic it.
func TestPLICacheMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	r := dataset.Random(rng, 300, 6, 4)
	ctx := context.Background()

	// Algorithms wired through the cache; the row-based ones (FDEP2,
	// FastFDs) hold no partitions and must simply be unaffected.
	cached := map[dhyfd.Algorithm]bool{
		dhyfd.DHyFD: true, dhyfd.HyFD: true, dhyfd.TANE: true, dhyfd.DFD: true,
	}
	for _, a := range chaosAlgorithms {
		t.Run(a.String(), func(t *testing.T) {
			plain, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2))
			if err != nil {
				t.Fatalf("uncached run failed: %v", err)
			}
			res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2),
				dhyfd.WithPartitionCache(16<<20))
			if err != nil {
				t.Fatalf("cached run failed: %v", err)
			}
			if !dep.Equal(res.FDs, plain.FDs) {
				t.Errorf("cache changed the cover: %d vs %d FDs", len(res.FDs), len(plain.FDs))
			}
			traffic := res.Stats.CacheHits + res.Stats.CacheMisses
			if cached[a] && traffic == 0 {
				t.Errorf("%v reported no cache traffic", a)
			}
			if !cached[a] && traffic != 0 {
				t.Errorf("%v is not cache-wired but reported traffic %d", a, traffic)
			}
		})
	}
}

// TestPLICacheTinyBudgetDegradesGracefully: a cache too small to hold
// anything useful must thrash (evictions) without changing the cover and
// without flagging the run degraded — the cache yields, the run proceeds.
func TestPLICacheTinyBudgetDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := dataset.Random(rng, 250, 6, 3)
	ctx := context.Background()
	for _, a := range []dhyfd.Algorithm{dhyfd.DHyFD, dhyfd.TANE, dhyfd.DFD} {
		t.Run(a.String(), func(t *testing.T) {
			plain, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a))
			if err != nil {
				t.Fatal(err)
			}
			res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a),
				dhyfd.WithPartitionCache(256)) // a couple of tiny partitions at most
			if err != nil {
				t.Fatal(err)
			}
			if !dep.Equal(res.FDs, plain.FDs) {
				t.Error("tiny cache changed the cover")
			}
			if res.Stats.Degraded {
				t.Errorf("tiny cache flagged the run degraded: %s", res.Stats.DegradedReason)
			}
		})
	}
}

// TestPLICacheUnderMemoryBudget: with both a run budget and a cache, the
// cache must never be the reason a run degrades, and whatever cover comes
// back stays sound.
func TestPLICacheUnderMemoryBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := dataset.Random(rng, 300, 6, 4)
	ctx := context.Background()
	for _, a := range []dhyfd.Algorithm{dhyfd.DHyFD, dhyfd.TANE} {
		t.Run(a.String(), func(t *testing.T) {
			res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a),
				dhyfd.WithMemoryBudget(1<<20), dhyfd.WithPartitionCache(1<<20))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range res.FDs {
				if !check.Holds(r, f) {
					t.Errorf("unsound FD emitted: %v", f.Format(r.Names))
				}
			}
		})
	}
}

// TestPLICacheWithFaultInjection: a fault firing mid-run with the cache
// enabled must still produce only sound FDs (the post-run verifier itself
// goes through the cache).
func TestPLICacheWithFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	r := dataset.Random(rng, 200, 6, 4)
	ctx := context.Background()
	for _, site := range []faults.Site{faults.PartitionBuild, faults.PartitionIntersect} {
		for _, a := range []dhyfd.Algorithm{dhyfd.DHyFD, dhyfd.TANE} {
			t.Run(string(site)+"/"+a.String(), func(t *testing.T) {
				defer faults.Reset()
				faults.Arm(site, faults.Plan{Kind: faults.KindError, N: 2})
				res, err := dhyfd.Discover(ctx, r, dhyfd.WithAlgorithm(a),
					dhyfd.WithPartitionCache(16<<20))
				if res == nil {
					t.Fatal("nil result")
				}
				_ = err // errored or not, the emitted cover must be sound
				for _, f := range res.FDs {
					if !check.Holds(r, f) {
						t.Errorf("unsound FD emitted: %v", f.Format(r.Names))
					}
				}
			})
		}
	}
}
