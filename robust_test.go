package dhyfd_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	dhyfd "repro"
	"repro/internal/check"
	"repro/internal/dataset"
	"repro/internal/faults"
)

// TestDiscoverZeroRowRelation: a header-only relation must run cleanly
// through every algorithm — 0 rows means every FD holds vacuously and
// the left-reduced cover is ∅ → A for every attribute.
func TestDiscoverZeroRowRelation(t *testing.T) {
	r, err := dhyfd.FromRows([]string{"a", "b", "c"}, nil, dhyfd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range dhyfd.Algorithms() {
		res, err := dhyfd.Discover(context.Background(), r, dhyfd.WithAlgorithm(a))
		if err != nil {
			t.Errorf("%v on 0 rows: %v", a, err)
			continue
		}
		for _, f := range res.FDs {
			if !f.LHS.IsEmpty() {
				t.Errorf("%v: non-minimal FD %v on the empty relation", a, f.Format(r.Names))
			}
		}
	}
}

// TestDiscoverOneColumnRelation: a single attribute admits no non-trivial
// FD unless it is constant.
func TestDiscoverOneColumnRelation(t *testing.T) {
	varied, err := dhyfd.FromRows([]string{"a"}, [][]string{{"x"}, {"y"}, {"x"}}, dhyfd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	constant, err := dhyfd.FromRows([]string{"a"}, [][]string{{"x"}, {"x"}}, dhyfd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range dhyfd.Algorithms() {
		res, err := dhyfd.Discover(context.Background(), varied, dhyfd.WithAlgorithm(a))
		if err != nil {
			t.Errorf("%v on one varied column: %v", a, err)
		} else if len(res.FDs) != 0 {
			t.Errorf("%v found %d FDs on one varied column", a, len(res.FDs))
		}
		res, err = dhyfd.Discover(context.Background(), constant, dhyfd.WithAlgorithm(a))
		if err != nil {
			t.Errorf("%v on one constant column: %v", a, err)
		} else if len(res.FDs) != 1 {
			t.Errorf("%v found %d FDs on one constant column, want ∅ → a", a, len(res.FDs))
		}
	}
}

// TestZeroBudgetDegradesImmediately: a budget of 0 bytes is a real budget
// that exhausts on the first partition — the run must finish without
// error, flag itself Degraded with a reason, and still emit only sound
// FDs.
func TestZeroBudgetDegradesImmediately(t *testing.T) {
	r := testRelation(t)
	for _, a := range []dhyfd.Algorithm{dhyfd.DHyFD, dhyfd.HyFD, dhyfd.TANE, dhyfd.DFD} {
		res, err := dhyfd.Discover(context.Background(), r,
			dhyfd.WithAlgorithm(a), dhyfd.WithMemoryBudget(0))
		if err != nil {
			t.Errorf("%v with zero budget: %v", a, err)
			continue
		}
		if !res.Stats.Degraded {
			t.Errorf("%v with zero budget did not degrade", a)
		}
		if res.Stats.DegradedReason == "" {
			t.Errorf("%v degraded without a reason", a)
		}
		for _, f := range res.FDs {
			if !check.Holds(r, f) {
				t.Errorf("%v emitted unsound FD %v under zero budget", a, f.Format(r.Names))
			}
		}
	}
}

// TestMaxPartitionsDegrades: a tight partition cap degrades TANE to the
// shallow lattice levels; the partial cover stays sound.
func TestMaxPartitionsDegrades(t *testing.T) {
	r := testRelation(t)
	res, err := dhyfd.Discover(context.Background(), r,
		dhyfd.WithAlgorithm(dhyfd.TANE), dhyfd.WithMaxPartitions(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded || !strings.Contains(res.Stats.DegradedReason, "partition budget") {
		t.Errorf("degraded=%v reason=%q", res.Stats.Degraded, res.Stats.DegradedReason)
	}
	for _, f := range res.FDs {
		if !check.Holds(r, f) {
			t.Errorf("unsound FD %v", f.Format(r.Names))
		}
	}
}

// TestDHyFDBudgetKeepsCompleteCover: DHyFD degrades by disabling DDM
// refreshes, which only costs speed — the cover must still match an
// unbudgeted run exactly.
func TestDHyFDBudgetKeepsCompleteCover(t *testing.T) {
	r := testRelation(t)
	want, err := dhyfd.Discover(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dhyfd.Discover(context.Background(), r, dhyfd.WithMemoryBudget(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.FDs) != len(want.FDs) {
		t.Fatalf("budgeted DHyFD found %d FDs, unbudgeted %d", len(got.FDs), len(want.FDs))
	}
	for i := range want.FDs {
		if !want.FDs[i].LHS.Equal(got.FDs[i].LHS) || !want.FDs[i].RHS.Equal(got.FDs[i].RHS) {
			t.Fatalf("covers diverge at %d", i)
		}
	}
}

// TestDeadlineDuringDDMRefresh expires the deadline while a DDM refresh
// is sleeping on an injected delay: the run must come back promptly with
// the deadline error and the partial run report, not hang or crash.
func TestDeadlineDuringDDMRefresh(t *testing.T) {
	// Valid FDs at level 2 raise efficiency early while low-cardinality
	// categoricals keep deeper FDs pending, so the aggressive ratio
	// refreshes (same shape as the core refinement test).
	r := dataset.Generate(dataset.Spec{
		Name: "deep", Rows: 200, Seed: 9,
		Columns: []dataset.Column{
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Categorical, Card: 3},
			{Kind: dataset.Derived, Deps: []int{0, 1}, Card: 100},
		},
	})
	defer faults.Reset()
	faults.Arm(faults.DDMRefresh, faults.Plan{Kind: faults.KindDelay, N: 1, Delay: 150 * time.Millisecond})
	res, err := dhyfd.Discover(context.Background(), r,
		dhyfd.WithRatio(0.001), // refresh as often as possible
		dhyfd.WithDeadline(time.Now().Add(30*time.Millisecond)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if res == nil || !res.Stats.Cancelled {
		t.Error("partial run report should record the cancellation")
	}
	for _, f := range res.FDs {
		if !check.Holds(r, f) {
			t.Errorf("unsound FD %v after deadline", f.Format(r.Names))
		}
	}
}

// TestPanicErrorSurfacesThroughDiscover: an injected panic deep in
// partition code must come back as a *dhyfd.PanicError reachable with
// errors.As, itself unwrapping to faults.ErrInjected.
func TestPanicErrorSurfacesThroughDiscover(t *testing.T) {
	r := testRelation(t)
	defer faults.Reset()
	faults.Arm(faults.PartitionBuild, faults.Plan{Kind: faults.KindPanic, N: 1})
	res, err := dhyfd.Discover(context.Background(), r, dhyfd.WithAlgorithm(dhyfd.TANE))
	if err == nil {
		t.Fatal("injected panic produced no error")
	}
	var perr *dhyfd.PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err is %T, want *dhyfd.PanicError", err)
	}
	if perr.Site != string(faults.PartitionBuild) {
		t.Errorf("site = %q, want %q", perr.Site, faults.PartitionBuild)
	}
	if len(perr.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Error("errors.Is(err, faults.ErrInjected) should hold through the PanicError")
	}
	if res == nil {
		t.Error("partial result should accompany the error")
	}
}

func testRelation(t *testing.T) *dhyfd.Relation {
	t.Helper()
	rows := [][]string{
		{"1", "a", "x", "p"},
		{"2", "a", "y", "p"},
		{"3", "b", "x", "q"},
		{"4", "b", "y", "q"},
		{"5", "a", "x", "p"},
		{"6", "c", "z", "r"},
		{"7", "c", "x", "r"},
		{"8", "a", "z", "p"},
	}
	r, err := dhyfd.FromRows([]string{"id", "dept", "site", "mgr"}, rows, dhyfd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}
