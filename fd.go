// Package dhyfd discovers, minimizes and ranks the functional dependencies
// of relational data.
//
// The package implements the system of "Discovery and Ranking of Functional
// Dependencies" (Wei and Link, ICDE 2019): the DHyFD hybrid discovery
// algorithm with its dynamic data manager, the TANE / FDEP / HyFD baselines
// it is evaluated against (plus FastFDs and DFD from its related work),
// canonical-cover computation, and the ranking of FDs by the number of
// redundant data values they cause.
//
// Quick start:
//
//	rel, err := dhyfd.ReadCSVFile("voters.csv", dhyfd.Options{})
//	fds := dhyfd.Discover(rel)                          // left-reduced cover
//	can := dhyfd.CanonicalCover(rel.NumCols(), fds)     // much smaller cover
//	for _, r := range dhyfd.Rank(rel, can) {            // most relevant first
//		fmt.Printf("%6d  %s\n", r.Counts.WithNulls, r.FD.Format(rel.Names))
//	}
//
// Discovery returns a left-reduced cover: every minimal FD X → A with a
// singleton right-hand side. CanonicalCover shrinks that to a non-redundant
// cover with unique left-hand sides, and Rank orders FDs by relevance.
package dhyfd

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/dfd"
	"repro/internal/fastfds"
	"repro/internal/fdep"
	"repro/internal/hyfd"
	"repro/internal/relation"
	"repro/internal/tane"
)

// FD is a functional dependency over column indexes of a Relation. The
// zero-based attribute sets render with Format and the relation's Names.
type FD = dep.FD

// Relation is dictionary-encoded relational data; see ReadCSV, FromRows
// and FromCodes.
type Relation = relation.Relation

// NullSemantics selects how missing values compare during discovery.
type NullSemantics = relation.NullSemantics

const (
	// NullEqNull treats all missing values as one value (the default and
	// the paper's main experimental setting).
	NullEqNull = relation.NullEqNull
	// NullNeqNull treats every missing value as unique; nulls never agree.
	NullNeqNull = relation.NullNeqNull
)

// Options configures data ingestion.
type Options = relation.Options

// ReadCSV parses CSV data with a header row into a Relation.
func ReadCSV(r io.Reader, opts Options) (*Relation, error) {
	return relation.ReadCSV(r, opts)
}

// ReadCSVFile parses the CSV file at path into a Relation.
func ReadCSVFile(path string, opts Options) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dhyfd: %w", err)
	}
	defer f.Close()
	return relation.ReadCSV(f, opts)
}

// FromRows encodes raw string rows into a Relation.
func FromRows(names []string, rows [][]string, opts Options) (*Relation, error) {
	return relation.FromRows(names, rows, opts)
}

// FromCodes builds a Relation from pre-encoded column-major codes.
func FromCodes(names []string, cols [][]int32, nulls [][]bool, sem NullSemantics) *Relation {
	return relation.FromCodes(names, cols, nulls, sem)
}

// Algorithm selects a discovery algorithm. DHyFD is the paper's
// contribution and the default; the others are the evaluated baselines.
type Algorithm int

const (
	// DHyFD is the dynamic hybrid algorithm (default).
	DHyFD Algorithm = iota
	// HyFD is the sampling-focused hybrid of Papenbrock and Naumann.
	HyFD
	// TANE is the column-based lattice algorithm.
	TANE
	// FDEP is the row-based algorithm with classic induction.
	FDEP
	// FDEP1 is FDEP over a non-redundant cover of non-FDs with synergized
	// induction.
	FDEP1
	// FDEP2 is FDEP with descending-sorted non-FDs and synergized
	// induction — the variant the paper's evaluation calls FDEP.
	FDEP2
	// FastFDs is the depth-first difference-set algorithm of Wyss,
	// Giannella and Robertson — a related-work extension beyond the
	// paper's evaluated baselines.
	FastFDs
	// DFD is the random-walk lattice algorithm of Abedjan, Schulze and
	// Naumann — likewise a related-work extension.
	DFD
)

var algorithmNames = map[Algorithm]string{
	DHyFD: "dhyfd", HyFD: "hyfd", TANE: "tane",
	FDEP: "fdep", FDEP1: "fdep1", FDEP2: "fdep2",
	FastFDs: "fastfds", DFD: "dfd",
}

func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm resolves a name like "dhyfd" or "tane".
func ParseAlgorithm(name string) (Algorithm, error) {
	for a, s := range algorithmNames {
		if s == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("dhyfd: unknown algorithm %q", name)
}

// Algorithms lists all available algorithms in a stable order.
func Algorithms() []Algorithm {
	return []Algorithm{DHyFD, HyFD, TANE, FDEP, FDEP1, FDEP2, FastFDs, DFD}
}

// DiscoverOptions tunes discovery.
type DiscoverOptions struct {
	// Algorithm defaults to DHyFD.
	Algorithm Algorithm
	// Ratio is DHyFD's efficiency–inefficiency threshold (default 3.0).
	Ratio float64
	// Workers parallelizes DHyFD's per-level validation (default serial).
	Workers int
	// HyFDConfig tunes the HyFD baseline's phase switching.
	HyFDConfig hyfd.Config
}

// Discover computes the left-reduced cover of the FDs holding on r using
// DHyFD with default tuning.
func Discover(r *Relation) []FD {
	return core.Discover(r)
}

// DiscoverWith computes the left-reduced cover with an explicit algorithm
// and tuning.
func DiscoverWith(r *Relation, opts DiscoverOptions) []FD {
	switch opts.Algorithm {
	case HyFD:
		fds, _ := hyfd.DiscoverWithConfig(r, opts.HyFDConfig)
		return fds
	case TANE:
		return tane.Discover(r)
	case FDEP:
		return fdep.Discover(r, fdep.Classic)
	case FDEP1:
		return fdep.Discover(r, fdep.NonRedundant)
	case FDEP2:
		return fdep.Discover(r, fdep.Sorted)
	case FastFDs:
		return fastfds.Discover(r)
	case DFD:
		return dfd.Discover(r)
	default:
		fds, _ := core.DiscoverWithConfig(r, core.Config{Ratio: opts.Ratio, Workers: opts.Workers})
		return fds
	}
}

// DHyFDStats re-exports the DHyFD run statistics.
type DHyFDStats = core.Stats

// DiscoverDHyFDStats runs DHyFD and returns its run statistics, useful for
// understanding where time and memory went.
func DiscoverDHyFDStats(r *Relation, ratio float64) ([]FD, DHyFDStats) {
	return core.DiscoverWithConfig(r, core.Config{Ratio: ratio})
}
