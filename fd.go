// Package dhyfd discovers, minimizes and ranks the functional dependencies
// of relational data.
//
// The package implements the system of "Discovery and Ranking of Functional
// Dependencies" (Wei and Link, ICDE 2019): the DHyFD hybrid discovery
// algorithm with its dynamic data manager, the TANE / FDEP / HyFD baselines
// it is evaluated against (plus FastFDs and DFD from its related work),
// canonical-cover computation, and the ranking of FDs by the number of
// redundant data values they cause.
//
// Quick start:
//
//	rel, err := dhyfd.ReadCSVFile("voters.csv", dhyfd.Options{})
//	ctx := context.Background()
//	res, err := dhyfd.Discover(ctx, rel, dhyfd.WithTopK(10))
//	for _, r := range res.Ranked {                       // most relevant first
//		fmt.Printf("%6d  %s\n", r.Counts.WithNulls, r.FD.Format(rel.Names))
//	}
//	fmt.Println(res.Stats.String())                      // where the time went
//
// Discovery returns a left-reduced cover: every minimal FD X → A with a
// singleton right-hand side, bundled in a Result together with the run
// report (per-phase wall time, rows scanned, partitions built and refined,
// candidates validated). Options select the algorithm and tuning:
//
//	res, err := dhyfd.Discover(ctx, rel,
//		dhyfd.WithAlgorithm(dhyfd.TANE),
//		dhyfd.WithWorkers(4),
//		dhyfd.WithDeadline(time.Now().Add(30*time.Second)))
//
// WithTopK(k) fuses the paper's ranking into the search: the run keeps
// only the k FDs causing the most redundant data values (Section VI) and
// prunes lattice branches that provably cannot reach the top k, returning
// them pre-ranked in Result.Ranked. WithMaxError(eps) relaxes validity to
// approximate FDs whose g3 violation count stays within eps of the row
// count. Cancel ctx (or let the deadline pass) and Discover returns
// promptly with the context's error and a partial Result whose Stats
// record the phases completed so far. CanonicalCover shrinks the cover to
// a non-redundant one with unique left-hand sides, and Rank orders any
// cover by relevance after the fact:
//
//	can := dhyfd.CanonicalCover(rel.NumCols(), res.FDs)  // much smaller cover
//	ranked, _, err := dhyfd.Rank(ctx, rel, can)
package dhyfd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/dfd"
	"repro/internal/engine"
	"repro/internal/fastfds"
	"repro/internal/fdep"
	"repro/internal/hyfd"
	"repro/internal/partition"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/runstate"
	"repro/internal/tane"
	"repro/internal/topk"
)

// FD is a functional dependency over column indexes of a Relation. The
// zero-based attribute sets render with Format and the relation's Names.
type FD = dep.FD

// Relation is dictionary-encoded relational data; see ReadCSV, FromRows
// and FromCodes.
type Relation = relation.Relation

// NullSemantics selects how missing values compare during discovery.
type NullSemantics = relation.NullSemantics

const (
	// NullEqNull treats all missing values as one value (the default and
	// the paper's main experimental setting).
	NullEqNull = relation.NullEqNull
	// NullNeqNull treats every missing value as unique; nulls never agree.
	NullNeqNull = relation.NullNeqNull
)

// Options configures data ingestion.
type Options = relation.Options

// ReadCSV parses CSV data with a header row into a Relation.
func ReadCSV(r io.Reader, opts Options) (*Relation, error) {
	return relation.ReadCSV(r, opts)
}

// ReadCSVFile parses the CSV file at path into a Relation.
func ReadCSVFile(path string, opts Options) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dhyfd: %w", err)
	}
	defer f.Close()
	return relation.ReadCSV(f, opts)
}

// FromRows encodes raw string rows into a Relation.
func FromRows(names []string, rows [][]string, opts Options) (*Relation, error) {
	return relation.FromRows(names, rows, opts)
}

// FromCodes builds a Relation from pre-encoded column-major codes.
func FromCodes(names []string, cols [][]int32, nulls [][]bool, sem NullSemantics) *Relation {
	return relation.FromCodes(names, cols, nulls, sem)
}

// Algorithm selects a discovery algorithm. DHyFD is the paper's
// contribution and the default; the others are the evaluated baselines.
type Algorithm int

const (
	// DHyFD is the dynamic hybrid algorithm (default).
	DHyFD Algorithm = iota
	// HyFD is the sampling-focused hybrid of Papenbrock and Naumann.
	HyFD
	// TANE is the column-based lattice algorithm.
	TANE
	// FDEP is the row-based algorithm with classic induction.
	FDEP
	// FDEP1 is FDEP over a non-redundant cover of non-FDs with synergized
	// induction.
	FDEP1
	// FDEP2 is FDEP with descending-sorted non-FDs and synergized
	// induction — the variant the paper's evaluation calls FDEP.
	FDEP2
	// FastFDs is the depth-first difference-set algorithm of Wyss,
	// Giannella and Robertson — a related-work extension beyond the
	// paper's evaluated baselines.
	FastFDs
	// DFD is the random-walk lattice algorithm of Abedjan, Schulze and
	// Naumann — likewise a related-work extension.
	DFD
)

var algorithmNames = map[Algorithm]string{
	DHyFD: "dhyfd", HyFD: "hyfd", TANE: "tane",
	FDEP: "fdep", FDEP1: "fdep1", FDEP2: "fdep2",
	FastFDs: "fastfds", DFD: "dfd",
}

func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm resolves a name like "dhyfd" or "TANE". Matching is
// case-insensitive and deterministic: candidates are tried in the stable
// order of Algorithms.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if strings.EqualFold(algorithmNames[a], name) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("dhyfd: unknown algorithm %q", name)
}

// Algorithms lists all available algorithms in a stable order.
func Algorithms() []Algorithm {
	return []Algorithm{DHyFD, HyFD, TANE, FDEP, FDEP1, FDEP2, FastFDs, DFD}
}

// RunStats is the algorithm-agnostic run report every algorithm emits:
// per-phase wall time, hot-path counters (rows scanned, partitions built
// and refined, candidates validated) and the cancellation and degradation
// state.
type RunStats = engine.RunStats

// PanicError is the typed error a panic inside the discovery runtime is
// promoted to: Discover returns it alongside a partial Result instead of
// crashing the process. Site attributes the failure, Stack holds the
// panicking goroutine's stack. Unwrap it with errors.As:
//
//	var pe *dhyfd.PanicError
//	if errors.As(err, &pe) { log.Printf("panic at %s:\n%s", pe.Site, pe.Stack) }
type PanicError = engine.PanicError

// Result bundles a discovery run's output: the left-reduced cover and the
// run report. On cancellation Discover returns a partial Result — Stats
// describe the phases completed before the context fired — alongside the
// context's error.
type Result struct {
	// FDs is the left-reduced cover: every minimal FD with a singleton RHS.
	// Under WithTopK it holds the k best FDs in ranked order.
	FDs []FD
	// Ranked pairs each FD with its redundancy counts, sorted most relevant
	// first. Populated only under WithTopK; otherwise nil (rank a full
	// cover with Rank).
	Ranked []RankedFD
	// Algorithm is the algorithm that produced the cover.
	Algorithm Algorithm
	// Stats reports what the run did and where the time went.
	Stats RunStats
}

// Option tunes a Discover call; see WithAlgorithm, WithWorkers, WithRatio
// and WithDeadline.
type Option func(*discoverConfig)

type discoverConfig struct {
	algorithm  Algorithm
	workers    int
	ratio      float64
	deadline   time.Time
	memBudget  int64 // bytes; < 0 = unlimited
	maxParts   int64 // partitions; < 0 = unlimited
	cacheBytes int64 // PLI cache capacity; <= 0 = disabled
	cache      *PLICache
	shardSize  int    // rows per shard in the PLI bootstrap; <= 0 = default
	spillDir   string // spill-tier root; meaningful only when spill is set
	spill      bool   // attach an out-of-core tier to the PLI cache
	noVerify   bool
	topK       int     // > 0 enables the fused top-k search
	maxErr     float64 // g3 error bound in [0, 1); 0 = exact
	ckptDir    string  // checkpoint directory; "" = durability off
	ckptEvery  time.Duration
	resumeDir  string // resume directory; "" = cold start
	retries    int    // transient-failure retries per work item
	optErr     error  // first invalid option, reported by Discover
}

// WithAlgorithm selects the discovery algorithm (default DHyFD).
func WithAlgorithm(a Algorithm) Option {
	return func(c *discoverConfig) { c.algorithm = a }
}

// WithWorkers sets the validation worker-pool width for the algorithms
// with a parallel hot path (DHyFD, HyFD, TANE). Values below 2 keep the
// serial behaviour; other algorithms ignore it.
func WithWorkers(n int) Option {
	return func(c *discoverConfig) { c.workers = n }
}

// WithRatio sets DHyFD's efficiency–inefficiency threshold (default 3.0,
// the paper's tuned value). Other algorithms ignore it.
func WithRatio(ratio float64) Option {
	return func(c *discoverConfig) { c.ratio = ratio }
}

// WithDeadline bounds the run's wall time: past d, Discover returns
// context.DeadlineExceeded with a partial Result. It composes with the
// caller's ctx; whichever deadline is earlier wins.
func WithDeadline(d time.Time) Option {
	return func(c *discoverConfig) { c.deadline = d }
}

// WithMemoryBudget bounds the approximate partition memory a run may hold
// live (clusters × rows accounting over the PLI caches). On exhaustion the
// run stops refining — DHyFD disables DDM refreshes, TANE abandons deeper
// lattice levels, DFD abandons its remaining walks — finishes validating
// the candidates in flight, and returns with Stats.Degraded set and the
// reason in Stats.DegradedReason, instead of exhausting memory. A budget
// of 0 degrades immediately; the row-based FDEP variants hold no
// partitions and ignore it. Degraded partial covers pass the post-run
// soundness verifier before Discover returns them.
func WithMemoryBudget(bytes int64) Option {
	return func(c *discoverConfig) {
		if bytes < 0 {
			bytes = 0
		}
		c.memBudget = bytes
	}
}

// WithMaxPartitions caps the total number of stripped partitions a run may
// materialize, the coarse-grained companion of WithMemoryBudget with the
// same degradation semantics.
func WithMaxPartitions(n int) Option {
	return func(c *discoverConfig) {
		if n < 0 {
			n = 0
		}
		c.maxParts = int64(n)
	}
}

// WithPartitionCache bounds a shared PLI cache at the given byte capacity
// and routes the run's partition lookups through it: single-attribute
// partitions, TANE's lattice joins, DFD's node partitions, DHyFD's DDM
// refreshes and the post-run soundness verifier all consult the cache
// before building, and publish what they build. Entries are evicted LRU
// at the capacity bound; under a WithMemoryBudget the cache additionally
// yields to the run — it sheds entries (or rejects inserts) rather than
// consuming headroom the run itself needs, so caching never degrades a
// run that would otherwise finish. Cache traffic is reported in
// Result.Stats (CacheHits / CacheMisses / CacheEvictions). Zero or
// negative disables caching (the default).
func WithPartitionCache(bytes int64) Option {
	return func(c *discoverConfig) { c.cacheBytes = bytes }
}

// WithShardSize sets the row-block size of the sharded single-attribute
// partition bootstrap used by the PLI-based algorithms (DHyFD, HyFD,
// TANE, DFD): columns longer than one shard are grouped shard-by-shard on
// the worker pool and merged into partitions byte-identical to the serial
// build, so ingest-sized relations never serialize their PLI build on one
// core. n <= 0 keeps the default (partition.DefaultShardSize rows). The
// row-based algorithms (FDEP variants, FastFDs) build no partitions and
// ignore it.
func WithShardSize(n int) Option {
	return func(c *discoverConfig) { c.shardSize = n }
}

// WithSpillDir attaches an out-of-core tier to the run's PLI cache:
// entries the cache bound or the memory budget's headroom would evict (or
// reject) write their compact backing to temp files under dir instead of
// being discarded, and fault back in — memory-mapped where the platform
// supports it — on their next hit. dir of "" selects the system temp
// directory; the run owns a private subdirectory under it and removes it
// when done. Combined with WithCache the tier attaches to the caller's
// cache, which then holds spill files until PLICache.Close. Without any
// cache configured, a default-capacity run-private cache is created to
// spill through. Spill traffic is reported in Stats under cache_spills /
// cache_reloads / cache_peak_bytes / cache_spilled_bytes.
func WithSpillDir(dir string) Option {
	return func(c *discoverConfig) {
		c.spill = true
		c.spillDir = dir
	}
}

// withoutPostVerify disables the post-run soundness verifier, for tests
// that inspect raw degraded output.
func withoutPostVerify() Option {
	return func(c *discoverConfig) { c.noVerify = true }
}

// PLICache is a caller-owned, size-bounded LRU cache of stripped
// partitions that a whole discover→rank pipeline shares: pass it to
// Discover via WithCache and to RankWith / TotalRedundancyWith via
// RankConfig, and the partitions discovery builds are reused by ranking
// (and by later runs over the same relation) instead of being rebuilt.
// A PLICache is safe for concurrent use; it serves partitions of one
// relation shape — the first run pins the row count.
type PLICache struct {
	c *partition.Cache
}

// NewPLICache returns a cache bounded by maxBytes of partition memory
// (values <= 0 use a 64 MiB default). Entries are evicted least recently
// used at the bound.
func NewPLICache(maxBytes int64) *PLICache {
	if maxBytes <= 0 {
		maxBytes = ranking.DefaultCacheBytes
	}
	return &PLICache{c: partition.NewCache(maxBytes, nil)}
}

// Len returns the number of cached partitions.
func (pc *PLICache) Len() int {
	if pc == nil {
		return 0
	}
	return pc.c.Len()
}

// Bytes returns the resident partition bytes.
func (pc *PLICache) Bytes() int64 {
	if pc == nil {
		return 0
	}
	return pc.c.Bytes()
}

// Close releases the cache: entries are purged and, when a WithSpillDir
// run attached an out-of-core tier, its spill files and mappings are
// removed. Call it once no Discover or ranking call is using the cache —
// memory-mapped partitions served from the spill tier are invalidated.
// Idempotent and safe on nil; a cache without a spill tier only sheds its
// entries.
func (pc *PLICache) Close() error {
	if pc == nil {
		return nil
	}
	return pc.c.Close()
}

// WithCache routes the run's partition lookups through the caller-owned
// cache, so a single cache spans Discover and the ranking calls that
// follow. It supersedes WithPartitionCache (which creates a run-private
// cache of the given capacity); a nil pc leaves caching as otherwise
// configured.
func WithCache(pc *PLICache) Option {
	return func(c *discoverConfig) { c.cache = pc }
}

// WithTopK restricts discovery to the k most relevant FDs — the ones
// causing the most redundant data values (the ranking of Section VI) —
// returned pre-ranked in Result.Ranked with their redundancy counts, and
// mirrored in Result.FDs. For the lattice algorithms (DHyFD, HyFD, TANE,
// DFD) the limit is fused into the search: the run maintains a concurrent
// top-k heap scored by ‖π_LHS‖ (exactly the #red+0 count of a valid FD)
// and abandons branches whose redundancy upper bound cannot enter the
// heap, so low-relevance regions of the lattice are never validated. The
// result is identical to discovering the full cover, ranking it and
// truncating — just cheaper. The row-based algorithms (FDEP variants,
// FastFDs) have no lattice to prune and fall back to exactly that
// rank-and-truncate. Heap traffic and abandoned branches are reported in
// Stats under topk_admitted / topk_rejected / topk_pruned_branches.
// k of 0 disables the limit (the default); negative k is an error.
func WithTopK(k int) Option {
	return func(c *discoverConfig) {
		if k < 0 {
			c.optErr = fmt.Errorf("dhyfd: WithTopK(%d): k must be >= 0", k)
			return
		}
		c.topK = k
	}
}

// WithMaxError relaxes discovery to approximate FDs: X → A is accepted
// while its g3 error — the fraction of rows to delete for it to hold
// exactly — stays at or below eps. The bound applies per candidate during
// the search (row sampling is disabled for the hybrids: an exact
// counterexample pair no longer refutes a candidate), and the returned
// cover is re-verified against the relation before Discover returns, so
// every reported FD genuinely satisfies the bound. eps of 0 keeps exact
// discovery (the default); eps outside [0, 1) is an error, as is
// combining a non-zero eps with the row-based algorithms (FDEP variants,
// FastFDs), which derive covers from exact difference sets.
func WithMaxError(eps float64) Option {
	return func(c *discoverConfig) {
		if eps < 0 || eps >= 1 {
			c.optErr = fmt.Errorf("dhyfd: WithMaxError(%v): eps must be in [0, 1)", eps)
			return
		}
		c.maxErr = eps
	}
}

// Snapshot rejection errors, re-exported so callers of WithResume can
// classify a refusal with errors.Is. A directory without a snapshot is not
// an error — WithResume cold-starts there.
var (
	// ErrSnapshotCorrupt reports a snapshot failing its checksum or
	// decoding inconsistently.
	ErrSnapshotCorrupt = runstate.ErrCorrupt
	// ErrSnapshotVersion reports a snapshot written by an incompatible
	// format or section version.
	ErrSnapshotVersion = runstate.ErrVersion
	// ErrSnapshotMismatch reports a healthy snapshot belonging to a
	// different run: another relation, algorithm, or result-shaping option.
	ErrSnapshotMismatch = runstate.ErrMismatch
)

// WithCheckpoint makes the run durable: the driver snapshots its resumable
// state — the FD-tree or live lattice level, the non-FD set, the top-k
// heap, the run report and a PLI-cache manifest — into dir at every search
// boundary, writing the file atomically (temp + fsync + rename) whenever
// interval has elapsed since the last write (non-positive intervals select
// runstate's 30 s default). A later Discover over the same relation and
// result-shaping options resumes from the snapshot with WithResume and
// emits a cover byte-identical to an uninterrupted run. Deadline and
// cancellation exits flush a final snapshot before returning, so an
// interrupt never loses the frontier. Supported by every algorithm except
// the FDEP variants, whose single induction pass has no resumable
// frontier.
func WithCheckpoint(dir string, interval time.Duration) Option {
	return func(c *discoverConfig) {
		if dir == "" {
			c.optErr = errors.New("dhyfd: WithCheckpoint: dir must be non-empty")
			return
		}
		c.ckptDir = dir
		c.ckptEvery = interval
	}
}

// WithResume continues a run from the snapshot in dir, skipping the work
// the checkpointed run already finished. An empty dir is an error; a dir
// without a snapshot is a cold start (so a crash before the first
// checkpoint re-runs cleanly under the same flags). A snapshot from a
// different relation, algorithm, or result-shaping option is rejected
// with runstate.ErrMismatch; damaged or version-skewed snapshots with
// runstate.ErrCorrupt / runstate.ErrVersion. Resumed covers are
// re-verified against the relation before they are returned. Combine with
// WithCheckpoint on the same dir to keep checkpointing the continued run.
func WithResume(dir string) Option {
	return func(c *discoverConfig) {
		if dir == "" {
			c.optErr = errors.New("dhyfd: WithResume: dir must be non-empty")
			return
		}
		c.resumeDir = dir
	}
}

// WithRetries lets the parallel drivers (DHyFD, HyFD, TANE) re-run a
// failed validation batch up to n times when the failure is classified
// transient, sleeping a capped, fully-jittered exponential backoff between
// attempts. Fatal failures (and organic panics) still surface immediately
// as *PanicError. Attempts and retries are reported in Stats under
// "attempts" / "retries". n of 0 disables retrying (the default);
// negative n is an error.
func WithRetries(n int) Option {
	return func(c *discoverConfig) {
		if n < 0 {
			c.optErr = fmt.Errorf("dhyfd: WithRetries(%d): n must be >= 0", n)
			return
		}
		c.retries = n
	}
}

// Discover computes the left-reduced cover of the FDs holding on r. With
// no options it runs DHyFD with the paper's tuning. The context cancels
// the run cooperatively: on cancellation Discover returns ctx's error and
// a partial Result whose Stats (Cancelled = true) cover the work done so
// far.
//
// Discover never re-panics: a panic anywhere in the runtime surfaces as a
// *PanicError alongside the partial Result. Runs that end early for any
// reason — cancelled, degraded under a WithMemoryBudget/WithMaxPartitions
// budget, or errored — have their partial cover re-verified against the
// relation before it is returned, so every FD in Result.FDs holds on the
// data (row-sampled above check.DefaultSampleRows rows).
func Discover(ctx context.Context, r *Relation, opts ...Option) (res *Result, err error) {
	cfg := discoverConfig{memBudget: -1, maxParts: -1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.optErr != nil {
		return &Result{Algorithm: cfg.algorithm}, cfg.optErr
	}
	// The lattice algorithms support the fused top-k heap and approximate
	// validation; the row-based ones derive covers from exact difference
	// sets, so they reject WithMaxError and satisfy WithTopK by ranking
	// and truncating their full cover (see attachTopK).
	lattice := false
	switch cfg.algorithm {
	case DHyFD, HyFD, TANE, DFD:
		lattice = true
	case FDEP, FDEP1, FDEP2, FastFDs:
	default:
	}
	maxViol := 0
	if cfg.maxErr > 0 {
		if !lattice {
			return &Result{Algorithm: cfg.algorithm},
				fmt.Errorf("dhyfd: WithMaxError is not supported by the row-based %v; use DHyFD, HyFD, TANE or DFD", cfg.algorithm)
		}
		maxViol = int(cfg.maxErr * float64(r.NumRows()))
	}
	// Durability: every algorithm with a resumable search frontier supports
	// checkpoint/resume; the FDEP variants' single induction pass does not.
	if cfg.ckptDir != "" || cfg.resumeDir != "" {
		switch cfg.algorithm {
		case DHyFD, HyFD, TANE, DFD, FastFDs:
		default:
			return &Result{Algorithm: cfg.algorithm},
				fmt.Errorf("dhyfd: WithCheckpoint/WithResume are not supported by %v; use DHyFD, HyFD, TANE, DFD or FastFDs", cfg.algorithm)
		}
	}
	var fp runstate.Fingerprint
	if cfg.ckptDir != "" || cfg.resumeDir != "" {
		fp = runstate.FingerprintOf(r, cfg.algorithm.String(), cfg.topK, int64(maxViol))
	}
	var snap *runstate.Snapshot
	if cfg.resumeDir != "" {
		s, lerr := runstate.Load(cfg.resumeDir)
		switch {
		case errors.Is(lerr, runstate.ErrNoCheckpoint):
			// Nothing written yet: a cold start under the same flags.
		case lerr != nil:
			return &Result{Algorithm: cfg.algorithm}, lerr
		default:
			if merr := s.Fingerprint.Match(fp); merr != nil {
				return &Result{Algorithm: cfg.algorithm}, merr
			}
			snap = s
		}
	}
	var cp *runstate.Checkpointer
	if cfg.ckptDir != "" {
		c, cerr := runstate.NewCheckpointer(cfg.ckptDir, cfg.ckptEvery, fp)
		if cerr != nil {
			return &Result{Algorithm: cfg.algorithm}, cerr
		}
		cp = c
	}
	var collector *topk.Collector
	if cfg.topK > 0 && lattice {
		if snap != nil && snap.TopK != nil {
			collector = snap.TopK.Restore()
		} else {
			collector = topk.New(cfg.topK)
		}
	}
	if !cfg.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, cfg.deadline)
		defer cancel()
	}
	var budget *partition.Budget
	if cfg.memBudget >= 0 || cfg.maxParts >= 0 {
		budget = partition.NewBudget(cfg.memBudget, cfg.maxParts)
	}
	cache := partition.NewCache(cfg.cacheBytes, budget)
	if cfg.cache != nil {
		cache = cfg.cache.c
	}
	if cfg.spill && cache == nil {
		// No cache configured: the spill tier needs one to route
		// partition traffic through, so create a default-capacity
		// run-private cache.
		cache = partition.NewCache(ranking.DefaultCacheBytes, budget)
	}
	// Run-private caches (not caller-owned via WithCache) own spill files
	// and mappings that must not outlive the run. The close is registered
	// before EnableSpill so an enable failure below still tears the cache
	// down instead of leaking it through the early return.
	spillPrivate := cfg.spill && cfg.cache == nil
	defer func() {
		if spillPrivate {
			// After the run no partition from the cache is referenced
			// (Result carries FDs and counts, never partitions), so the
			// mappings and spill files can go.
			_ = cache.Close()
		}
	}()
	if cfg.spill && cache.SpillDir() == "" {
		if serr := cache.EnableSpill(cfg.spillDir); serr != nil {
			return &Result{Algorithm: cfg.algorithm}, serr
		}
	}
	spill0 := cache.Stats()

	res = &Result{Algorithm: cfg.algorithm}
	// Backstop: the drivers recover their own panics into typed errors
	// with their partial run report, but option plumbing, future drivers
	// and the post-run verifier must not crash the caller either.
	defer func() {
		if rec := recover(); rec != nil {
			err = engine.NewPanicError("discover", rec)
			res.FDs = nil
		}
	}()

	var (
		fds []FD
		rs  *engine.RunStats
	)
	switch cfg.algorithm {
	case DHyFD:
		fds, rs, err = core.DiscoverRun(ctx, r, core.Config{
			Ratio: cfg.ratio, Workers: cfg.workers, ShardSize: cfg.shardSize,
			Budget: budget, Cache: cache,
			TopK: collector, MaxViolations: maxViol,
			Checkpoint: cp, Resume: snap, Retries: cfg.retries,
		})
	case HyFD:
		fds, rs, err = hyfd.DiscoverRun(ctx, r, hyfd.Config{
			Workers: cfg.workers, ShardSize: cfg.shardSize,
			Budget: budget, Cache: cache,
			TopK: collector, MaxViolations: maxViol,
			Checkpoint: cp, Resume: snap, Retries: cfg.retries,
		})
	case TANE:
		fds, rs, err = tane.Run(ctx, r, tane.Config{
			Workers: cfg.workers, ShardSize: cfg.shardSize,
			Budget: budget, Cache: cache,
			TopK: collector, MaxViolations: maxViol,
			Checkpoint: cp, Resume: snap, Retries: cfg.retries,
		})
	case FDEP:
		fds, rs, err = fdep.Run(ctx, r, fdep.Classic, fdep.Config{Workers: cfg.workers, ShardSize: cfg.shardSize})
	case FDEP1:
		fds, rs, err = fdep.Run(ctx, r, fdep.NonRedundant, fdep.Config{Workers: cfg.workers, ShardSize: cfg.shardSize})
	case FDEP2:
		fds, rs, err = fdep.Run(ctx, r, fdep.Sorted, fdep.Config{Workers: cfg.workers, ShardSize: cfg.shardSize})
	case FastFDs:
		fds, rs, err = fastfds.Run(ctx, r, fastfds.Config{
			Workers: cfg.workers, ShardSize: cfg.shardSize,
			Checkpoint: cp, Resume: snap,
		})
	case DFD:
		fds, rs, err = dfd.Run(ctx, r, dfd.Config{
			Budget: budget, Cache: cache,
			Workers: cfg.workers, ShardSize: cfg.shardSize,
			TopK: collector, MaxViolations: maxViol,
			Checkpoint: cp, Resume: snap,
		})
	default:
		return nil, fmt.Errorf("dhyfd: unknown algorithm %v", cfg.algorithm)
	}

	res.FDs = fds
	if rs != nil {
		res.Stats = *rs
	}
	if r.Paged() {
		paged, faults := r.PagerStats()
		res.Stats.ColumnsPaged = paged
		res.Stats.ColumnPageFaults = faults
	}
	if cp != nil {
		// The final flush persists the terminal boundary so a post-run
		// resume replays nothing. Its failure only surfaces when the run
		// itself succeeded — a cancelled run's own error wins.
		if ferr := cp.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		res.Stats.Count("checkpoints", cp.Saves())
	}
	if snap != nil {
		res.Stats.Count("resumed", 1)
	}
	if (err != nil || res.Stats.Degraded || maxViol > 0 || snap != nil) && !cfg.noVerify {
		// The gate must complete even when the run was cancelled — it is
		// exactly the cancelled run's partial cover that needs vetting —
		// so it runs on a non-cancellable derivation of the caller's ctx.
		if verr := verifySoundness(context.WithoutCancel(ctx), r, res, cache, maxViol, cfg.workers, cfg.shardSize); verr != nil && err == nil {
			err = verr
		}
	}
	if cfg.topK > 0 {
		if rerr := attachTopK(ctx, r, res, &cfg, cache); err == nil {
			err = rerr
		}
	}
	if cfg.spill {
		// The spill tier's traffic, including the post-run verify/rank
		// passes above: entries written out, entries faulted back in, and
		// the resident/spilled byte gauges.
		d := cache.Stats().Delta(spill0)
		res.Stats.Count("cache_spills", d.Spills)
		res.Stats.Count("cache_reloads", d.Reloads)
		res.Stats.Count("cache_peak_bytes", d.PeakBytes)
		res.Stats.Count("cache_spilled_bytes", d.SpilledBytes)
	}
	return res, err
}

// attachTopK ranks the cover with the redundancy kernels, truncates it to
// the k most relevant FDs and publishes them as Result.Ranked (mirrored
// in Result.FDs). Under the fused search the cover is already the heap's
// at-most-k admissions — ranking them attaches the full redundancy counts
// to the in-search ‖π_LHS‖ scores and costs k partition lookups against
// the run's cache. For the row-based algorithms, which expose no in-search
// pruning hook, this is the fallback that makes WithTopK behave uniformly
// across WithAlgorithm.
func attachTopK(ctx context.Context, r *Relation, res *Result, cfg *discoverConfig, cache *partition.Cache) error {
	ranked, rstats, err := ranking.RankCtx(ctx, r, res.FDs, ranking.Config{Workers: cfg.workers, Cache: cache})
	rstats.AddToRunStats(&res.Stats)
	if len(ranked) > cfg.topK {
		ranked = ranked[:cfg.topK:cfg.topK]
	}
	res.Ranked = ranked
	fds := make([]FD, len(ranked))
	for i, rf := range ranked {
		fds[i] = rf.FD
	}
	res.FDs = fds
	res.Stats.FDs = int64(len(fds))
	return err
}

// verifySoundness re-validates a partial cover against the relation and
// drops any FD that does not hold, recording the outcome in the run
// report's counters (postverify_checked / postverify_dropped /
// postverify_sampled). With maxViol > 0 it verifies the g3 bound of
// approximate covers instead of exact validity. The run's PLI cache, when
// enabled, supplies the LHS partitions the run already built; the extra
// cache traffic is folded into the run report, and with workers > 1 the
// per-FD scans shard across a pool of that width. Clean complete exact
// runs skip it: their cover is exact by construction and continuously
// cross-checked in the test suite. A verification failure (an injected
// fault, a worker panic) returns after keeping only the FDs already
// proven sound — the cover stays conservative, never unsound.
func verifySoundness(ctx context.Context, r *Relation, res *Result, cache *partition.Cache, maxViol, workers, shardSize int) error {
	if r == nil || len(res.FDs) == 0 {
		return nil
	}
	cache0 := cache.Stats()
	rep, err := check.VerifyCover(ctx, r, res.FDs, check.VerifyOptions{
		Cache: cache, MaxViolations: maxViol,
		Workers: workers, ShardSize: shardSize,
	})
	delta := cache.Stats().Delta(cache0)
	res.Stats.CacheHits += delta.Hits
	res.Stats.CacheMisses += delta.Misses
	res.Stats.CacheEvictions += delta.Evictions
	res.FDs = rep.Sound
	res.Stats.FDs = int64(len(rep.Sound))
	res.Stats.Count("postverify_checked", int64(rep.Checked))
	res.Stats.Count("postverify_dropped", int64(rep.Violated))
	if rep.Sampled {
		res.Stats.Count("postverify_sampled", 1)
	}
	return err
}
