package dhyfd

import (
	"repro/internal/armstrong"
	"repro/internal/bitset"
	"repro/internal/normalize"
)

// AttrSet is a set of column indexes; render it with Names.
type AttrSet = bitset.Set

// AttrSetOf builds an attribute set of width numAttrs from column indexes.
func AttrSetOf(numAttrs int, attrs ...int) AttrSet {
	return bitset.FromAttrs(numAttrs, attrs...)
}

// Schema is one relation of a decomposition.
type Schema = normalize.Relation

// CandidateKeys enumerates the minimal keys implied by fds over numAttrs
// attributes (Lucchesi–Osborn). maxKeys bounds the potentially exponential
// output; 0 means unbounded.
func CandidateKeys(numAttrs int, fds []FD, maxKeys int) []AttrSet {
	return normalize.CandidateKeys(numAttrs, fds, maxKeys)
}

// IsSuperkey reports whether x determines every attribute under fds.
func IsSuperkey(numAttrs int, fds []FD, x AttrSet) bool {
	return normalize.IsSuperkey(numAttrs, fds, x)
}

// Synthesize3NF computes a lossless, dependency-preserving Third Normal
// Form decomposition from the FDs (classic synthesis over the canonical
// cover).
func Synthesize3NF(numAttrs int, fds []FD) []Schema {
	return normalize.Synthesize3NF(numAttrs, fds)
}

// DecomposeBCNF computes a lossless Boyce-Codd Normal Form decomposition.
// Dependency preservation is not guaranteed (and not always possible).
func DecomposeBCNF(numAttrs int, fds []FD) []Schema {
	return normalize.DecomposeBCNF(numAttrs, fds, 0)
}

// LosslessDecomposition verifies that the fragments join back to the
// original relation without spurious tuples.
func LosslessDecomposition(numAttrs int, fds []FD, rels []Schema) bool {
	return normalize.LosslessAll(numAttrs, fds, rels)
}

// PreservesDependencies verifies that every FD is still enforceable on the
// fragments alone.
func PreservesDependencies(numAttrs int, fds []FD, rels []Schema) bool {
	return normalize.Preserved(numAttrs, fds, rels)
}

// ArmstrongRelation generates a relation that satisfies exactly the FDs
// implied by fds: every implied FD holds and every other FD is violated.
// Armstrong relations turn covers into example data a human can inspect.
// The construction enumerates maximal closed sets, which can be large;
// budget bounds the search (0 = default).
func ArmstrongRelation(numAttrs int, fds []FD, budget int) (*Relation, error) {
	return armstrong.Relation(numAttrs, fds, budget)
}
