// Normalization: from discovered FDs to a schema design — the application
// that motivated the paper's redundancy measure in the first place
// (Section I: FDs are a major source of data redundancy, which brought
// forward the Boyce-Codd and Third Normal Form proposals).
//
// The pipeline: discover the FDs, shrink them to a canonical cover, rank
// them by the redundancy they cause, enumerate candidate keys, then let
// the library synthesize 3NF and BCNF designs and verify their properties.
package main

import (
	"context"
	"fmt"

	dhyfd "repro"
	"repro/internal/dataset"
)

func main() {
	b, err := dataset.ByName("ncvoter")
	if err != nil {
		panic(err)
	}
	rel := b.GenerateDefault()
	n := rel.NumCols()
	fmt.Printf("schema R with %d attributes, %d rows\n\n", n, rel.NumRows())

	res, err := dhyfd.Discover(context.Background(), rel)
	if err != nil {
		panic(err)
	}
	can := dhyfd.CanonicalCover(n, res.FDs)
	ranked, _, err := dhyfd.Rank(context.Background(), rel, can)
	if err != nil {
		panic(err)
	}
	fmt.Printf("canonical cover: %d FDs\n", len(can))

	// Candidate keys (Lucchesi–Osborn over the cover).
	keys := dhyfd.CandidateKeys(n, can, 16)
	fmt.Printf("candidate keys (first %d):\n", len(keys))
	for i, k := range keys {
		if i == 5 {
			fmt.Printf("  … %d more\n", len(keys)-i)
			break
		}
		fmt.Printf("  KEY (%s)\n", k.Names(rel.Names))
	}

	// The redundancy ranking shows what normalization would save: every
	// redundant occurrence of a non-superkey FD is a value BCNF removes.
	fmt.Println("\ntop BCNF violations by wasted storage:")
	shown := 0
	for _, r := range ranked {
		if dhyfd.IsSuperkey(n, can, r.FD.LHS) || r.Counts.WithNulls == 0 {
			continue
		}
		fmt.Printf("  %-55s wastes %5d values\n", r.FD.Format(rel.Names), r.Counts.WithNulls)
		if shown++; shown == 5 {
			break
		}
	}

	// 3NF synthesis: lossless and dependency-preserving by construction.
	three := dhyfd.Synthesize3NF(n, can)
	fmt.Printf("\n3NF synthesis: %d relations (lossless=%v, preserves FDs=%v)\n",
		len(three), dhyfd.LosslessDecomposition(n, can, three),
		dhyfd.PreservesDependencies(n, can, three))
	for i, s := range three {
		if i == 6 {
			fmt.Printf("  … %d more\n", len(three)-i)
			break
		}
		fmt.Printf("  R%d(%s) key (%s)\n", i+1, s.Attrs.Names(rel.Names), s.Key.Names(rel.Names))
	}

	// BCNF: lossless, possibly dropping enforceability of some FDs.
	bcnf := dhyfd.DecomposeBCNF(n, can)
	fmt.Printf("\nBCNF decomposition: %d relations (lossless=%v, preserves FDs=%v)\n",
		len(bcnf), dhyfd.LosslessDecomposition(n, can, bcnf),
		dhyfd.PreservesDependencies(n, can, bcnf))
	for i, s := range bcnf {
		if i == 6 {
			fmt.Printf("  … %d more\n", len(bcnf)-i)
			break
		}
		fmt.Printf("  R%d(%s) key (%s)\n", i+1, s.Attrs.Names(rel.Names), s.Key.Names(rel.Names))
	}

	// Quantify the win: total redundancy before vs after (the fragments
	// individually hold the same data without the repeated values).
	tot, _, err := dhyfd.TotalRedundancy(context.Background(), rel, can)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\noriginal table pins %d of %d stored values (%.1f%%) via FDs —\n"+
		"the redundancy normalization exists to remove.\n",
		tot.RedWithNulls, tot.Values, tot.PercentRedWithNulls())
}
