// Data cleaning: use FD ranking to guide a data steward, the workflow the
// paper's Section VI motivates.
//
// Three signals fall out of the ranking of a canonical cover:
//
//  1. FDs with zero redundancy whose LHS is a single column are likely
//     keys — and an almost-key FD with a tiny redundancy count (like the
//     paper's σ4, voter_id → state with 2 occurrences) points straight at
//     duplicate or dirty rows.
//  2. FDs whose redundancy is carried entirely by null markers (σ3) are
//     probably accidental and should not be enforced.
//  3. High-redundancy FDs are the real structure of the data set; their
//     violations after future inserts are the errors worth alerting on.
package main

import (
	"context"
	"fmt"
	"sort"

	dhyfd "repro"
	"repro/internal/dataset"
)

func main() {
	// A 1000-row voter roll with planted dirt: duplicate voter ids,
	// a city column functionally close to zip, and a suffix column that is
	// almost entirely missing.
	b, err := dataset.ByName("ncvoter")
	if err != nil {
		panic(err)
	}
	rel := b.GenerateDefault()
	fmt.Printf("voter roll: %d rows x %d columns\n", rel.NumRows(), rel.NumCols())
	ir, ic, miss := rel.IncompleteStats()
	fmt.Printf("incomplete rows: %d, incomplete columns: %d, missing values: %d\n\n", ir, ic, miss)

	res, err := dhyfd.Discover(context.Background(), rel)
	if err != nil {
		panic(err)
	}
	can := dhyfd.CanonicalCover(rel.NumCols(), res.FDs)
	ranked, _, err := dhyfd.Rank(context.Background(), rel, can)
	if err != nil {
		panic(err)
	}
	fmt.Printf("canonical cover: %d FDs\n\n", len(can))

	// Signal 1: near-keys. A single-column LHS with tiny but non-zero
	// redundancy means a handful of rows share a value that should be
	// unique — classic duplicate records.
	fmt.Println("── near-keys (duplicate-record suspects) ──")
	found := 0
	for i := len(ranked) - 1; i >= 0 && found < 5; i-- {
		r := ranked[i]
		if r.FD.LHS.Count() == 1 && r.Counts.WithNulls > 0 && r.Counts.WithNulls <= rel.NumRows()/50 {
			fmt.Printf("  %-50s %3d suspicious occurrences\n",
				r.FD.Format(rel.Names), r.Counts.WithNulls)
			found++
		}
	}
	if found == 0 {
		fmt.Println("  none")
	}

	// Signal 2: null-carried FDs — patterns that evaporate once missing
	// values stop counting as evidence.
	fmt.Println("\n── likely accidental (redundancy carried by nulls) ──")
	type suspect struct {
		fd    string
		with  int
		clean int
	}
	var suspects []suspect
	for _, r := range ranked {
		if r.Counts.WithNulls >= 10 && r.Counts.NoNulls*5 <= r.Counts.WithNulls {
			suspects = append(suspects, suspect{
				fd: r.FD.Format(rel.Names), with: r.Counts.WithNulls, clean: r.Counts.NoNulls})
		}
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i].with > suspects[j].with })
	for i, s := range suspects {
		if i == 8 {
			fmt.Printf("  … %d more\n", len(suspects)-i)
			break
		}
		fmt.Printf("  %-60s %5d with nulls, %4d without\n", s.fd, s.with, s.clean)
	}
	if len(suspects) == 0 {
		fmt.Println("  none")
	}

	// Signal 3: the load-bearing structure — enforce these as constraints.
	fmt.Println("\n── strongest constraints (enforce on ingest) ──")
	for i, r := range ranked {
		if i == 8 {
			break
		}
		if r.Counts.NoNulls == 0 {
			continue
		}
		fmt.Printf("  %-60s %5d null-free redundant occurrences\n",
			r.FD.Format(rel.Names), r.Counts.NoNulls)
	}
}
