// Null semantics: the same data yields different FDs depending on how
// missing values compare (Section V-B of the paper). Under null = null two
// missing values agree like any repeated value; under null ≠ null every
// missing value is unique, so a column full of nulls behaves like a key.
//
// The example also shows why the distinction matters for ranking: an FD
// whose evidence is mostly null agreements (the paper's σ3) looks strong
// under null = null and evaporates under null ≠ null.
package main

import (
	"context"
	"fmt"

	dhyfd "repro"
	"repro/internal/dataset"
)

func main() {
	for _, sem := range []dhyfd.NullSemantics{dhyfd.NullEqNull, dhyfd.NullNeqNull} {
		rel := dataset.NCVoterSnippet(sem)
		res, err := dhyfd.Discover(context.Background(), rel)
		if err != nil {
			panic(err)
		}
		fds := res.FDs
		can := dhyfd.CanonicalCover(rel.NumCols(), fds)
		fmt.Printf("── %v ──\n", sem)
		fmt.Printf("left-reduced cover: %d FDs; canonical: %d FDs\n", len(fds), len(can))

		// The paper's σ3: last_name, gender, zip_code → name_suffix.
		// Every name_suffix is missing, so σ3's redundancy is pure null.
		sigma3 := dhyfd.FD{
			LHS: dhyfd.AttrSetOf(rel.NumCols(), 2, 4, 8),
			RHS: dhyfd.AttrSetOf(rel.NumCols(), 3),
		}
		c := dhyfd.RedundancyOf(rel, sigma3)
		holds := dhyfd.Implies(rel.NumCols(), fds, sigma3)
		fmt.Printf("σ3 (%s): holds=%v, redundancy with nulls=%d, without=%d\n",
			sigma3.Format(rel.Names), holds, c.WithNulls, c.NoNulls)

		// Count FDs determining the all-null column either way.
		suffixFDs := 0
		for _, f := range can {
			if f.RHS.Contains(3) {
				suffixFDs++
			}
		}
		fmt.Printf("FDs determining name_suffix in the canonical cover: %d\n\n", suffixFDs)
	}

	fmt.Println("under null ≠ null the all-null suffix column is unique per row,")
	fmt.Println("so nothing (short of a key) determines it — σ3 was an artifact.")
}
