// Profiling: the one-shot report that ties the whole pipeline together —
// column statistics, minimal keys, the canonical cover and the redundancy
// ranking for a data set, the data-profiling workflow the paper's
// introduction frames FD discovery inside of.
package main

import (
	"os"

	"repro/internal/dataset"
	"repro/internal/profile"
	"repro/internal/relation"
)

func main() {
	// Profile the paper's Table I snippet; swap in any CSV via
	// dhyfd.ReadCSVFile with Options{KeepDicts: true}.
	rel := dataset.NCVoterSnippet(relation.NullEqNull)
	rep := profile.Profile(rel, profile.Options{TopValues: 2})
	rep.Write(os.Stdout, rel.Names)
}
