// Quickstart: discover, minimize and rank the FDs of a small CSV — the
// ncvoter snippet of the paper's Table I.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	dhyfd "repro"
)

// The Table I snippet of the ncvoter benchmark (name_suffix is missing
// everywhere).
const csvData = `voter_id,first_name,last_name,name_suffix,gender,street_address,city,state,zip_code
131,joseph,cox,,m,1108 highland ave,new bern,nc,28562
131,joseph,cox,,m,9 casey rd,new bern,nc,28562
657,essie,warren,,f,105 south st,lasker,nc,27845
725,lila,morris,,f,500 w jefferson st,jackson,nc,27845
244,sallie,futrell,,f,9802 us hwy 258,murfreesboro,nc,27855
247,herbert,futrell,,m,9802 us hwy 258,murfreesboro,nc,27855
440,barbara,johnson,,f,6155 kimesville rd,liberty,nc,27298
464,albert,johnson,,m,6155 kimesville rd,liberty,nc,27298
265,w,johnson,,m,11957 us hwy 158,conway,nc,27820
272,clyde,johnson,,m,8944 us hwy 158,conway,nc,27820
26,louise,johnson,,f,113 gentry st #20,wilkesboro,nc,28659
42,walter,johnson,,m,169 otis brown dr,wilkesboro,nc,28659
604,christine,davenport,,f,1710 matthews rd,robersonville,nc,27871
751,christine,hurst,,f,106 w purvis st,robersonville,nc,27871
`

func main() {
	// 1. Load. Empty fields are missing values; null = null is the default.
	rel, err := dhyfd.ReadCSV(strings.NewReader(csvData), dhyfd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows x %d columns\n\n", rel.NumRows(), rel.NumCols())

	// 2. Discover the left-reduced cover with DHyFD.
	res, err := dhyfd.Discover(context.Background(), rel)
	if err != nil {
		panic(err)
	}
	fds := res.FDs
	n, attrs := dhyfd.CoverSize(fds)
	fmt.Printf("left-reduced cover: %d FDs, %d attribute occurrences\n", n, attrs)

	// 3. Shrink it to a canonical cover.
	can := dhyfd.CanonicalCover(rel.NumCols(), fds)
	cn, cattrs := dhyfd.CoverSize(can)
	fmt.Printf("canonical cover:    %d FDs, %d attribute occurrences (%.0f%% of left-reduced)\n\n",
		cn, cattrs, 100*float64(cn)/float64(n))

	// 4. Rank by the redundancy each FD causes: the most relevant patterns
	// first. #red+0 counts nulls, #red-0 requires null-free evidence.
	fmt.Println("top FDs by data redundancy (#red+0 / #red / #red-0):")
	ranked, _, err := dhyfd.Rank(context.Background(), rel, can)
	if err != nil {
		panic(err)
	}
	for i, r := range ranked {
		if i == 10 {
			fmt.Printf("  … %d more\n", len(ranked)-i)
			break
		}
		fmt.Printf("  %4d / %4d / %4d   %s\n",
			r.Counts.WithNulls, r.Counts.NoNullRHS, r.Counts.NoNulls,
			r.FD.Format(rel.Names))
	}

	// 5. An FD whose redundancy is carried entirely by nulls is probably
	// accidental — the paper's σ3.
	fmt.Println("\nlikely accidental (all redundancy from nulls):")
	for _, r := range ranked {
		if r.Counts.WithNulls > 0 && r.Counts.NoNulls == 0 {
			fmt.Printf("  %s\n", r.FD.Format(rel.Names))
		}
	}
}
