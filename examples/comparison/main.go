// Comparison: run every discovery algorithm on growing fragments of one
// data set and watch the paper's Figure 9 story unfold — the row-based
// FDEP degrades with rows, the column-based TANE with columns, and the
// hybrids stay smooth, with DHyFD ahead of HyFD as the data grows.
package main

import (
	"context"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	dhyfd "repro"
	"repro/internal/dataset"
)

func main() {
	b, err := dataset.ByName("weather")
	if err != nil {
		panic(err)
	}

	algos := []dhyfd.Algorithm{dhyfd.TANE, dhyfd.FDEP2, dhyfd.HyFD, dhyfd.DHyFD}

	fmt.Println("row scalability on the weather shape (18 columns):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "rows\tTANE\tFDEP2\tHyFD\tDHyFD\t#FD\n")
	for _, rows := range []int{500, 1000, 2000, 4000} {
		rel := b.Generate(rows, 18)
		times := make([]time.Duration, len(algos))
		fdCount := 0
		for i, a := range algos {
			start := time.Now()
			res, err := dhyfd.Discover(context.Background(), rel, dhyfd.WithAlgorithm(a))
			if err != nil {
				panic(err)
			}
			fds := res.FDs
			times[i] = time.Since(start)
			fdCount = len(fds)
		}
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\t%v\t%d\n",
			rows, times[0].Round(time.Millisecond), times[1].Round(time.Millisecond),
			times[2].Round(time.Millisecond), times[3].Round(time.Millisecond), fdCount)
	}
	tw.Flush()

	d, _ := dataset.ByName("diabetic")
	fmt.Println("\ncolumn scalability on the diabetic shape (1000 rows):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "cols\tTANE\tFDEP2\tHyFD\tDHyFD\t#FD\n")
	for _, cols := range []int{8, 12, 16, 20} {
		rel := d.Generate(1000, cols)
		times := make([]time.Duration, len(algos))
		fdCount := 0
		for i, a := range algos {
			start := time.Now()
			res, err := dhyfd.Discover(context.Background(), rel, dhyfd.WithAlgorithm(a))
			if err != nil {
				panic(err)
			}
			fds := res.FDs
			times[i] = time.Since(start)
			fdCount = len(fds)
		}
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\t%v\t%d\n",
			cols, times[0].Round(time.Millisecond), times[1].Round(time.Millisecond),
			times[2].Round(time.Millisecond), times[3].Round(time.Millisecond), fdCount)
	}
	tw.Flush()

	fmt.Println("\nall algorithms agree on the cover; they differ only in cost.")
}
