package dhyfd_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	dhyfd "repro"
	"repro/internal/brute"
	"repro/internal/dep"
)

const votersCSV = `id,name,city,zip,state
1,ann,berlin,10115,de
2,bob,berlin,10115,de
3,cas,hamburg,20095,de
4,dee,hamburg,20095,de
5,eli,munich,80331,de
`

func loadVoters(t *testing.T) *dhyfd.Relation {
	t.Helper()
	rel, err := dhyfd.ReadCSV(strings.NewReader(votersCSV), dhyfd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// discoverDefault runs the default algorithm through the redesigned API.
func discoverDefault(t *testing.T, rel *dhyfd.Relation) []dhyfd.FD {
	t.Helper()
	res, err := dhyfd.Discover(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	return res.FDs
}

func TestDiscoverPublicAPI(t *testing.T) {
	rel := loadVoters(t)
	fds := discoverDefault(t, rel)
	want := brute.MinimalFDs(rel)
	if !dep.Equal(fds, want) {
		t.Fatalf("Discover mismatch: %v vs %v", fds, want)
	}
	// zip -> city must be among the minimal FDs.
	found := false
	for _, f := range fds {
		if f.Format(rel.Names) == "zip -> {2}" || strings.Contains(f.Format(rel.Names), "zip -> ") {
			found = true
		}
	}
	if !found {
		t.Errorf("zip -> city missing:\n%s", dhyfd.FormatFDs(fds, rel.Names))
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	rel := loadVoters(t)
	want := brute.MinimalFDs(rel)
	for _, a := range dhyfd.Algorithms() {
		res, err := dhyfd.Discover(context.Background(), rel, dhyfd.WithAlgorithm(a))
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !dep.Equal(res.FDs, want) {
			t.Errorf("%v disagrees with brute force", a)
		}
	}
}

func TestCanonicalCoverShrinks(t *testing.T) {
	rel := loadVoters(t)
	fds := discoverDefault(t, rel)
	can := dhyfd.CanonicalCover(rel.NumCols(), fds)
	if !dhyfd.EquivalentCovers(rel.NumCols(), fds, can) {
		t.Error("canonical cover not equivalent")
	}
	cn, ca := dhyfd.CoverSize(can)
	ln, la := dhyfd.CoverSize(fds)
	if cn > ln || ca > la {
		t.Errorf("canonical larger: %d/%d vs %d/%d", cn, ca, ln, la)
	}
}

func TestRankPublicAPI(t *testing.T) {
	rel := loadVoters(t)
	can := dhyfd.CanonicalCover(rel.NumCols(), discoverDefault(t, rel))
	ranked, _, err := dhyfd.Rank(context.Background(), rel, can)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no ranked FDs")
	}
	// state is constant: the top FD must cause 5 redundant occurrences.
	if ranked[0].Counts.WithNulls != 5 {
		t.Errorf("top redundancy = %d, want 5 (∅ -> state)", ranked[0].Counts.WithNulls)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Counts.WithNulls > ranked[i-1].Counts.WithNulls {
			t.Error("ranking not descending")
		}
	}
	buckets := dhyfd.RedundancyHistogram(ranked)
	total := 0
	for _, b := range buckets {
		total += b.FDs
	}
	if total != len(ranked) {
		t.Errorf("histogram covers %d of %d FDs", total, len(ranked))
	}
}

func TestRankForColumn(t *testing.T) {
	rel := loadVoters(t)
	can := dhyfd.CanonicalCover(rel.NumCols(), discoverDefault(t, rel))
	views, _, err := dhyfd.RankForColumn(context.Background(), rel, can, 2) // city
	if err != nil {
		t.Fatal(err)
	}
	if len(views) == 0 {
		t.Fatal("no LHS determines city?")
	}
	// zip determines city with 4 redundant city occurrences (two pairs).
	foundZip := false
	for _, v := range views {
		if v.LHS.Names(rel.Names) == "zip" {
			foundZip = true
			if v.Red != 4 {
				t.Errorf("zip view red = %d, want 4", v.Red)
			}
		}
	}
	if !foundZip {
		t.Error("zip LHS missing from city views")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range dhyfd.Algorithms() {
		got, err := dhyfd.ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round trip failed for %v", a)
		}
		// Matching is case-insensitive.
		upper, err := dhyfd.ParseAlgorithm(strings.ToUpper(a.String()))
		if err != nil || upper != a {
			t.Errorf("case-insensitive round trip failed for %v", a)
		}
		mixed := strings.ToUpper(a.String()[:1]) + a.String()[1:]
		if got, err := dhyfd.ParseAlgorithm(mixed); err != nil || got != a {
			t.Errorf("mixed-case round trip failed for %v", a)
		}
	}
	if _, err := dhyfd.ParseAlgorithm("nope"); err == nil {
		t.Error("want error for unknown algorithm")
	}
	if _, err := dhyfd.ParseAlgorithm(dhyfd.Algorithm(99).String()); err == nil {
		t.Error("want error for out-of-range algorithm rendering")
	}
}

func TestDiscoverResultAndOptions(t *testing.T) {
	rel := loadVoters(t)
	want := brute.MinimalFDs(rel)
	for _, a := range dhyfd.Algorithms() {
		res, err := dhyfd.Discover(context.Background(), rel,
			dhyfd.WithAlgorithm(a), dhyfd.WithWorkers(2))
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.Algorithm != a {
			t.Errorf("%v: Result.Algorithm = %v", a, res.Algorithm)
		}
		if !dep.Equal(res.FDs, want) {
			t.Errorf("%v disagrees with brute force", a)
		}
		if len(res.Stats.Phases) == 0 || res.Stats.Elapsed <= 0 {
			t.Errorf("%v: run stats not populated: %+v", a, res.Stats)
		}
		if res.Stats.FDs != int64(len(res.FDs)) {
			t.Errorf("%v: Stats.FDs = %d, len = %d", a, res.Stats.FDs, len(res.FDs))
		}
	}
}

func TestDiscoverCancellation(t *testing.T) {
	rel := loadVoters(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := dhyfd.Discover(ctx, rel)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Stats.Cancelled {
		t.Error("partial Result must carry Cancelled stats")
	}
}

func TestDiscoverDeadline(t *testing.T) {
	rel := loadVoters(t)
	res, err := dhyfd.Discover(context.Background(), rel,
		dhyfd.WithDeadline(time.Now().Add(-time.Second)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || !res.Stats.Cancelled {
		t.Error("partial Result must carry Cancelled stats")
	}
}

func TestTopKOptionValidation(t *testing.T) {
	rel := loadVoters(t)
	if _, err := dhyfd.Discover(context.Background(), rel, dhyfd.WithTopK(-1)); err == nil {
		t.Error("WithTopK(-1) must error")
	}
	if _, err := dhyfd.Discover(context.Background(), rel, dhyfd.WithMaxError(1.5)); err == nil {
		t.Error("WithMaxError(1.5) must error")
	}
	if _, err := dhyfd.Discover(context.Background(), rel, dhyfd.WithMaxError(-0.1)); err == nil {
		t.Error("WithMaxError(-0.1) must error")
	}
	if _, err := dhyfd.Discover(context.Background(), rel,
		dhyfd.WithAlgorithm(dhyfd.FDEP), dhyfd.WithMaxError(0.1)); err == nil {
		t.Error("WithMaxError on a row-based algorithm must error")
	}
	// WithTopK(0) and WithMaxError(0) are the exact defaults.
	res, err := dhyfd.Discover(context.Background(), rel, dhyfd.WithTopK(0), dhyfd.WithMaxError(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranked != nil {
		t.Error("WithTopK(0) must not rank")
	}
}

func TestDiscoverTopK(t *testing.T) {
	rel := loadVoters(t)
	res, err := dhyfd.Discover(context.Background(), rel, dhyfd.WithTopK(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != 3 || len(res.FDs) != 3 {
		t.Fatalf("top-3 returned %d ranked / %d FDs", len(res.Ranked), len(res.FDs))
	}
	for i := range res.Ranked {
		if !res.Ranked[i].FD.LHS.Equal(res.FDs[i].LHS) || !res.Ranked[i].FD.RHS.Equal(res.FDs[i].RHS) {
			t.Errorf("Ranked[%d] and FDs[%d] disagree", i, i)
		}
	}
	// state is constant: the top FD must be ∅ -> state with 5 occurrences.
	if res.Ranked[0].Counts.WithNulls != 5 {
		t.Errorf("top redundancy = %d, want 5 (∅ -> state)", res.Ranked[0].Counts.WithNulls)
	}
	if res.Stats.FDs != 3 {
		t.Errorf("Stats.FDs = %d, want 3", res.Stats.FDs)
	}
}

func TestTotalRedundancy(t *testing.T) {
	rel := loadVoters(t)
	can := dhyfd.CanonicalCover(rel.NumCols(), discoverDefault(t, rel))
	tot, _, err := dhyfd.TotalRedundancy(context.Background(), rel, can)
	if err != nil {
		t.Fatal(err)
	}
	if tot.Values != 25 {
		t.Errorf("values = %d", tot.Values)
	}
	// At least the 5 state occurrences are redundant.
	if tot.Red < 5 {
		t.Errorf("red = %d, want >= 5", tot.Red)
	}
	if tot.PercentRed() <= 0 || tot.PercentRed() > 100 {
		t.Errorf("%%red = %f", tot.PercentRed())
	}
}

func TestNormalizationPublicAPI(t *testing.T) {
	rel := loadVoters(t)
	n := rel.NumCols()
	can := dhyfd.CanonicalCover(n, discoverDefault(t, rel))

	keys := dhyfd.CandidateKeys(n, can, 8)
	if len(keys) == 0 {
		t.Fatal("no keys")
	}
	for _, k := range keys {
		if !dhyfd.IsSuperkey(n, can, k) {
			t.Errorf("key %v is not a superkey", k)
		}
	}

	three := dhyfd.Synthesize3NF(n, can)
	if !dhyfd.LosslessDecomposition(n, can, three) {
		t.Error("3NF lossy")
	}
	if !dhyfd.PreservesDependencies(n, can, three) {
		t.Error("3NF must preserve dependencies")
	}

	bcnf := dhyfd.DecomposeBCNF(n, can)
	if !dhyfd.LosslessDecomposition(n, can, bcnf) {
		t.Error("BCNF lossy")
	}
}

func TestAttrSetOf(t *testing.T) {
	s := dhyfd.AttrSetOf(5, 1, 3)
	if !s.Contains(1) || !s.Contains(3) || s.Contains(0) {
		t.Errorf("AttrSetOf = %v", s)
	}
}

func TestCheckAndCoverIO(t *testing.T) {
	rel := loadVoters(t)
	can := dhyfd.CanonicalCover(rel.NumCols(), discoverDefault(t, rel))

	// Serialize and parse back.
	var buf strings.Builder
	if err := dhyfd.WriteCover(&buf, can, rel.Names); err != nil {
		t.Fatal(err)
	}
	parsed, err := dhyfd.ReadCover(strings.NewReader(buf.String()), rel.Names)
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Equal(can, parsed) {
		t.Fatalf("cover IO round trip failed:\n%s", buf.String())
	}

	// The discovered cover holds on its own data.
	if violated := dhyfd.CheckCover(rel, can); len(violated) != 0 {
		t.Errorf("cover violated on own data: %v", violated)
	}

	// A fabricated FD name -> zip is violated (two berlins, two hamburgs
	// share names? no — names unique; use city -> id instead).
	bad := dhyfd.FD{LHS: dhyfd.AttrSetOf(rel.NumCols(), 2), RHS: dhyfd.AttrSetOf(rel.NumCols(), 0)}
	vs := dhyfd.Violations(rel, bad, 0)
	if len(vs) == 0 {
		t.Error("city -> id should be violated")
	}
	if dhyfd.HoldsOn(rel, bad) {
		t.Error("HoldsOn disagrees with Violations")
	}
}
